"""Declarative run configuration for the reduction engine.

Before this module, every layer (CLI, trainers, elastic runtime,
benchmarks) parsed its own op/topology/fp16/bucket flags and enforced
its own slice of the mutual-exclusion rules.  :class:`RunConfig` is the
one frozen description of a run: flags are parsed into it exactly once
(:func:`parse_op` / :func:`parse_topology` in the CLI), validation
happens centrally in ``__post_init__`` (including the
``overlap``/``parallel_ranks`` exclusion that used to live in
``ParallelTrainer.__init__``), and the trainers consume it through
``from_config`` classmethods.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.distributed_optimizer import ReduceOpType
from repro.core.strategies import (
    OPS,
    TOPOLOGIES,
    StrategyReducer,
    get_strategy,
)


def parse_op(value) -> ReduceOpType:
    """Parse a CLI/user-facing op name into a :class:`ReduceOpType`.

    Accepts the enum itself, its value, or any case variant of the
    name; raises ``ValueError`` listing the valid ops otherwise.
    """
    if isinstance(value, ReduceOpType):
        return value
    try:
        return ReduceOpType(str(getattr(value, "value", value)).lower())
    except ValueError:
        raise ValueError(
            f"unknown reduction op {value!r}; choose from {sorted(OPS)}"
        ) from None


def parse_topology(value) -> str:
    """Parse/validate a topology name (``tree``/``tree_any``/``linear``/
    ``rvh``/``ring``/``hierarchical``); case-insensitive, ``-`` accepted
    for ``_``."""
    topology = str(value).lower().replace("-", "_")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {value!r}; choose from {sorted(TOPOLOGIES)}"
        )
    return topology


def validate_execution_strategy(overlap: bool, parallel_ranks: bool) -> None:
    """The one home of the overlap/parallel-ranks exclusion rule."""
    if overlap and parallel_ranks:
        raise ValueError(
            "overlap and parallel_ranks are mutually exclusive execution "
            "strategies; choose one"
        )


@dataclass(frozen=True)
class RunConfig:
    """Frozen, validated description of one training/reduction run.

    Parameters mirror the union of the trainer/optimizer keyword
    surfaces; construction normalizes ``op``/``topology`` and fails
    fast on any inconsistent combination, so a ``RunConfig`` that
    exists is runnable.  Use :meth:`replace` for modified copies.
    """

    op: str = "adasum"
    topology: str = "tree"
    gpus_per_node: int = 1
    per_layer: bool = True
    adasum_pre_optimizer: bool = False
    fp16: bool = False
    wire_dtype: str = "fp32"
    bucket_cap_mb: Optional[float] = None
    overlap: bool = False
    parallel_ranks: bool = False
    num_ranks: int = 1
    microbatch: int = 1
    seed: int = 0
    faults: Optional[object] = None
    network: Optional[object] = None
    timeout: float = 10.0
    min_ranks: int = 1

    def __post_init__(self):
        object.__setattr__(self, "op", parse_op(self.op).value)
        object.__setattr__(self, "topology", parse_topology(self.topology))
        # Fail fast if the cell is not registered.
        get_strategy(self.op, self.topology, "flat")
        if self.wire_dtype not in ("fp32", "fp16"):
            raise ValueError(
                f"wire_dtype must be 'fp32' or 'fp16', got {self.wire_dtype!r}"
            )
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.gpus_per_node > 1 and self.topology != "hierarchical":
            raise ValueError(
                "gpus_per_node > 1 requires topology='hierarchical', "
                f"got {self.topology!r}"
            )
        if (
            self.topology == "hierarchical"
            and self.num_ranks > 1
            and self.num_ranks % self.gpus_per_node
        ):
            raise ValueError(
                f"num_ranks ({self.num_ranks}) must be a multiple of "
                f"gpus_per_node ({self.gpus_per_node}) for a hierarchical run"
            )
        if self.microbatch < 1:
            raise ValueError("microbatch must be >= 1")
        if self.bucket_cap_mb is not None and self.bucket_cap_mb <= 0:
            raise ValueError("bucket_cap_mb must be positive")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        validate_execution_strategy(self.overlap, self.parallel_ranks)

    # -- derived views -------------------------------------------------
    @property
    def reduce_op(self) -> ReduceOpType:
        """The op as the :class:`ReduceOpType` enum."""
        return ReduceOpType(self.op)

    @property
    def tree(self) -> bool:
        """Legacy ``tree`` flag: topology is a binary-tree recursion."""
        return self.topology in ("tree", "tree_any")

    @property
    def allow_non_pow2(self) -> bool:
        """Legacy non-power-of-two flag (the ``tree_any`` geometry)."""
        return self.topology != "tree"

    def make_reducer(self) -> StrategyReducer:
        """Build the registry-backed reducer this config describes."""
        return StrategyReducer(
            op=self.op,
            topology=self.topology,
            per_layer=self.per_layer,
            gpus_per_node=self.gpus_per_node,
        )

    def replace(self, **changes) -> "RunConfig":
        """A modified copy (re-runs all validation)."""
        return dataclasses.replace(self, **changes)
