"""Declarative run configuration for the reduction engine.

Before this module, every layer (CLI, trainers, elastic runtime,
benchmarks) parsed its own op/topology/fp16/bucket flags and enforced
its own slice of the mutual-exclusion rules.  :class:`RunConfig` is the
one frozen description of a run: flags are parsed into it exactly once
(:func:`parse_op` / :func:`parse_topology` in the CLI), validation
happens centrally in ``__post_init__`` (including the
``overlap``/``parallel_ranks`` exclusion that used to live in
``ParallelTrainer.__init__``), and the trainers consume it through
``from_config`` classmethods.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.distributed_optimizer import ReduceOpType
from repro.core.strategies import (
    OPS,
    TOPOLOGIES,
    StrategyReducer,
    get_strategy,
)


def parse_op(value) -> ReduceOpType:
    """Parse a CLI/user-facing op name into a :class:`ReduceOpType`.

    Accepts the enum itself, its value, or any case variant of the
    name; raises ``ValueError`` listing the valid ops otherwise.
    """
    if isinstance(value, ReduceOpType):
        return value
    try:
        return ReduceOpType(str(getattr(value, "value", value)).lower())
    except ValueError:
        raise ValueError(
            f"unknown reduction op {value!r}; choose from {sorted(OPS)}"
        ) from None


def parse_topology(value) -> str:
    """Parse/validate a topology name (``tree``/``tree_any``/``linear``/
    ``rvh``/``ring``/``hierarchical``); case-insensitive, ``-`` accepted
    for ``_``."""
    topology = str(value).lower().replace("-", "_")
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {value!r}; choose from {sorted(TOPOLOGIES)}"
        )
    return topology


#: Valid execution backends, in cost order: in-process serial loop,
#: GIL-sharing threads, one OS process per rank over shared memory.
EXECUTIONS = ("serial", "threads", "processes")


def parse_execution(value) -> str:
    """Parse/validate an execution backend name.

    Accepts the legacy ``parallel_ranks`` booleans (``True`` →
    ``"threads"``, ``False`` → ``"serial"``) so old call sites keep
    working through the one validation chokepoint.
    """
    if isinstance(value, bool):
        value = "threads" if value else "serial"
    execution = str(value).lower()
    if execution not in EXECUTIONS:
        raise ValueError(
            f"unknown execution backend {value!r}; choose from {list(EXECUTIONS)}"
        )
    return execution


def validate_execution_strategy(
    overlap: bool, execution, reduce_mode: str = "parent", fp16: bool = False
) -> str:
    """The one home of the overlap/threads/processes exclusion rules.

    ``execution`` may be a backend name or a legacy ``parallel_ranks``
    bool.  Returns the normalized backend name.  Overlap reorders the
    backward pass around communication and owns the step loop, so it is
    mutually exclusive with every concurrent-rank backend.

    ``reduce_mode``/``fp16`` extend the rule set to the worker-parallel
    in-shm reduce: wire codecs (``wire_codecs``) compose with it freely
    — the parent round-trips the arena rows in shared memory *before*
    the workers combine them — but the legacy ``fp16=True`` dict codec
    bypasses the arena entirely, so that pair fails fast here rather
    than silently falling back.
    """
    execution = parse_execution(execution)
    if overlap and execution != "serial":
        raise ValueError(
            f"overlap and execution={execution!r} are mutually exclusive "
            "execution strategies; choose one"
        )
    if reduce_mode == "workers" and fp16:
        raise ValueError(
            "reduce_mode='workers' is incompatible with the legacy "
            "fp16 dict codec (fp16=True): the dict path bypasses the "
            "shared-memory arena the workers reduce; use "
            "wire_codecs=('fp16',) instead"
        )
    return execution


@dataclass(frozen=True)
class RunConfig:
    """Frozen, validated description of one training/reduction run.

    Parameters mirror the union of the trainer/optimizer keyword
    surfaces; construction normalizes ``op``/``topology`` and fails
    fast on any inconsistent combination, so a ``RunConfig`` that
    exists is runnable.  Use :meth:`replace` for modified copies.
    """

    op: str = "adasum"
    topology: str = "tree"
    gpus_per_node: int = 1
    per_layer: bool = True
    adasum_pre_optimizer: bool = False
    fp16: bool = False
    wire_dtype: str = "fp32"
    wire_codecs: Tuple[str, ...] = ()
    bucket_cap_mb: Optional[float] = None
    overlap: bool = False
    parallel_ranks: bool = False
    execution: str = "serial"
    reduce_mode: str = "parent"
    num_ranks: int = 1
    microbatch: int = 1
    seed: int = 0
    faults: Optional[object] = None
    network: Optional[object] = None
    timeout: float = 10.0
    min_ranks: int = 1

    def __post_init__(self):
        object.__setattr__(self, "op", parse_op(self.op).value)
        object.__setattr__(self, "topology", parse_topology(self.topology))
        # Fail fast if the cell is not registered.
        get_strategy(self.op, self.topology, "flat")
        # Wire codecs: parse/validate the stack exactly once; the legacy
        # wire_dtype string folds onto it (warn-once) so every consumer
        # downstream sees only the normalized wire_codecs tuple.
        from repro.comm.codec import codecs_from_wire_dtype, parse_wire_codecs

        legacy_codecs = codecs_from_wire_dtype(self.wire_dtype)  # validates string
        wire_codecs = parse_wire_codecs(self.wire_codecs)
        if legacy_codecs:
            from repro.core.deprecation import warn_deprecated

            warn_deprecated('wire_dtype="fp16"', 'wire_codecs=("fp16",)')
            if not wire_codecs:
                wire_codecs = legacy_codecs
            elif "fp16" not in wire_codecs:
                raise ValueError(
                    'wire_dtype="fp16" conflicts with wire_codecs='
                    f"{wire_codecs!r}; declare the stack once via wire_codecs"
                )
        object.__setattr__(self, "wire_codecs", wire_codecs)
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")
        if self.gpus_per_node > 1 and self.topology != "hierarchical":
            raise ValueError(
                "gpus_per_node > 1 requires topology='hierarchical', "
                f"got {self.topology!r}"
            )
        if (
            self.topology == "hierarchical"
            and self.num_ranks > 1
            and self.num_ranks % self.gpus_per_node
        ):
            raise ValueError(
                f"num_ranks ({self.num_ranks}) must be a multiple of "
                f"gpus_per_node ({self.gpus_per_node}) for a hierarchical run"
            )
        if self.microbatch < 1:
            raise ValueError("microbatch must be >= 1")
        if self.bucket_cap_mb is not None and self.bucket_cap_mb <= 0:
            raise ValueError("bucket_cap_mb must be positive")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        execution = parse_execution(self.execution)
        if self.parallel_ranks and execution == "serial":
            # Legacy flag maps onto the backend enum (warn-once).
            from repro.core.deprecation import warn_deprecated

            warn_deprecated("parallel_ranks=True", 'execution="threads"')
            execution = "threads"
        execution = validate_execution_strategy(
            self.overlap, execution, reduce_mode=self.reduce_mode, fp16=self.fp16
        )
        object.__setattr__(self, "execution", execution)
        # Keep the legacy field readable: True exactly when the resolved
        # backend is the threaded one, so old call sites see the truth.
        object.__setattr__(self, "parallel_ranks", execution == "threads")
        if self.reduce_mode not in ("parent", "workers"):
            raise ValueError(
                f"reduce_mode must be 'parent' or 'workers', got "
                f"{self.reduce_mode!r}"
            )
        if self.reduce_mode == "workers":
            if execution != "processes":
                raise ValueError(
                    "reduce_mode='workers' requires execution='processes': "
                    "only worker processes can run pair combines in "
                    "parallel over shared memory"
                )
            if self.topology == "rvh":
                raise ValueError(
                    "the 'rvh' topology has no pair-combine schedule "
                    "(it distributes partial dot products); use "
                    "reduce_mode='parent'"
                )

    # -- derived views -------------------------------------------------
    @property
    def reduce_op(self) -> ReduceOpType:
        """The op as the :class:`ReduceOpType` enum."""
        return ReduceOpType(self.op)

    @property
    def tree(self) -> bool:
        """Legacy ``tree`` flag: topology is a binary-tree recursion."""
        return self.topology in ("tree", "tree_any")

    @property
    def allow_non_pow2(self) -> bool:
        """Legacy non-power-of-two flag (the ``tree_any`` geometry)."""
        return self.topology != "tree"

    def make_reducer(self) -> StrategyReducer:
        """Build the registry-backed reducer this config describes."""
        return StrategyReducer(
            op=self.op,
            topology=self.topology,
            per_layer=self.per_layer,
            gpus_per_node=self.gpus_per_node,
        )

    def validate_for_pool(self, pool_size: int) -> "RunConfig":
        """Check this per-job config is schedulable on a shared rank pool.

        The multi-tenant scheduler admits jobs onto a fixed pool of
        ``pool_size`` ranks; a config that demands more than the pool,
        or whose elastic floor exceeds its own width, can never start.
        Scheduler jobs run under ``ElasticTrainer``, so its backend and
        topology restrictions apply here too.  Returns ``self`` so the
        call chains.
        """
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.num_ranks > pool_size:
            raise ValueError(
                f"job needs {self.num_ranks} ranks but the pool has {pool_size}"
            )
        if self.min_ranks > self.num_ranks:
            raise ValueError(
                f"min_ranks ({self.min_ranks}) exceeds num_ranks "
                f"({self.num_ranks}); the job could never admit"
            )
        if self.execution == "threads":
            raise ValueError(
                "scheduler jobs run under ElasticTrainer; "
                "execution must be 'serial' or 'processes'"
            )
        if self.topology == "rvh":
            raise ValueError(
                "the elastic collective does not support the 'rvh' topology"
            )
        return self

    def replace(self, **changes) -> "RunConfig":
        """A modified copy (re-runs all validation)."""
        return dataclasses.replace(self, **changes)
