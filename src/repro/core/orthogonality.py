"""Per-layer gradient-orthogonality instrumentation (paper §3.6, Figure 1).

During training, records for each layer the metric::

    orthogonality(layer) = ‖Adasum(g_1..g_n)‖² / Σ_i ‖g_i‖²

which is 1 for mutually orthogonal gradients and 1/n for parallel
equal-norm gradients.  The paper's Figure 1 plots this per layer over
training for ResNet-50 and BERT-Large: gradients start aligned (low
values), become orthogonal as training proceeds, and dip at every
learning-rate-schedule drop.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.operator import orthogonality_ratio


class OrthogonalityProbe:
    """Accumulates per-layer orthogonality samples over training.

    Call :meth:`record` with the per-rank gradient dicts at the steps
    you want sampled; read back :attr:`history` (layer → list of values)
    and :meth:`average_curve` (the bold red line of Figure 1).
    """

    def __init__(self, every: int = 1):
        if every < 1:
            raise ValueError("'every' must be >= 1")
        self.every = every
        self.steps: List[int] = []
        self.history: Dict[str, List[float]] = {}
        self.layer_sizes: Dict[str, int] = {}
        self._call_count = 0

    def record(self, grad_dicts: Sequence[Mapping[str, np.ndarray]], step=None) -> bool:
        """Sample orthogonality if this call falls on the cadence.

        Returns True when a sample was taken.
        """
        take = self._call_count % self.every == 0
        self._call_count += 1
        if not take:
            return False
        names = list(grad_dicts[0].keys())
        self.steps.append(self._call_count - 1 if step is None else step)
        for name in names:
            grads = [np.asarray(d[name]).reshape(-1) for d in grad_dicts]
            self.layer_sizes[name] = grads[0].size
            value = orthogonality_ratio(grads)
            self.history.setdefault(name, []).append(value)
        return True

    def average_curve(self, size_weighted: bool = False) -> np.ndarray:
        """Mean orthogonality across layers per sampled step (bold line).

        ``size_weighted=True`` weights each layer by its parameter
        count, so large conv/linear weights dominate over tiny bias and
        norm vectors whose few-dimensional orthogonality is noisy.
        """
        if not self.history:
            return np.empty(0)
        curves = np.array([vals for vals in self.history.values()])
        if not size_weighted:
            return curves.mean(axis=0)
        w = np.array([self.layer_sizes[name] for name in self.history], dtype=np.float64)
        return (curves * w[:, None]).sum(axis=0) / w.sum()

    def layer_curves(self) -> Dict[str, np.ndarray]:
        """Per-layer series (the thin colored lines of Figure 1)."""
        return {name: np.asarray(vals) for name, vals in self.history.items()}
