"""Exact sequential-SGD emulation via Hessian corrections (paper §3.7, Fig. 2).

The paper validates Adasum by comparing it, step by step, against a
*sequential emulation* that removes gradient staleness with the exact
Hessian (Equation 2)::

    g2(w1) ≈ g2(w0) − α · H2(w0) · g1(w0)

and, averaging both visit orders (Section 3.3)::

    combine(g1, g2) = g1 + g2 − (α/2)·H2·g1 − (α/2)·H1·g2

applied recursively over a binary tree exactly like Adasum.  Adasum is
this combiner with the Fisher approximation ``H ≈ g·gᵀ`` and the
optimal-step assumption ``α = 1/‖g‖²``; Figure 2 measures how far
Adasum (and plain summation) land from the Hessian-exact combination.

Hessian-vector products use central finite differences of the analytic
gradient — exact to O(ε²) and validated against dense Hessians on tiny
models (``tests/core/test_hessian.py``); see the DESIGN.md substitution
table (the paper used ``torch.autograd`` double backward).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

#: ``grad_fn(w) -> gradient`` — both flat float64 vectors.
GradFn = Callable[[np.ndarray], np.ndarray]


def hessian_vector_product(
    grad_fn: GradFn, w: np.ndarray, v: np.ndarray, eps: float = 1e-4
) -> np.ndarray:
    """``H(w) · v`` by central differences of ``grad_fn``.

    The probe is normalized so the finite-difference step has magnitude
    ``eps`` regardless of ``‖v‖`` (important when v is a tiny gradient).
    """
    v = np.asarray(v, dtype=np.float64)
    vnorm = float(np.linalg.norm(v))
    if vnorm == 0.0:
        return np.zeros_like(v)
    unit = v / vnorm
    gp = grad_fn(w + eps * unit)
    gm = grad_fn(w - eps * unit)
    return (gp - gm) * (vnorm / (2.0 * eps))


def exact_hessian(grad_fn: GradFn, w: np.ndarray, eps: float = 1e-4) -> np.ndarray:
    """Dense Hessian column by column (tiny models only; O(d) grad evals)."""
    d = w.size
    H = np.empty((d, d), dtype=np.float64)
    for j in range(d):
        e = np.zeros(d)
        e[j] = 1.0
        H[:, j] = hessian_vector_product(grad_fn, w, e, eps=eps)
    # Symmetrize away finite-difference noise.
    return 0.5 * (H + H.T)


def sequential_emulation_update(
    grad_fns: Sequence[GradFn],
    w0: np.ndarray,
    alpha: float,
    eps: float = 1e-4,
) -> np.ndarray:
    """Effective gradient of one *ordered* sequential pass (Equation 1+2).

    Emulates running minibatch ``i``'s SGD step after minibatches
    ``0..i-1``, correcting each gradient's staleness to first order with
    the exact (finite-difference) Hessian:
    ``e_i = g_i(w0) − α·H_i(w0)·(Σ_{j<i} e_j)``.  Returns ``Σ_i e_i``
    so the emulated final model is ``w0 − α · result``.
    """
    w0 = np.asarray(w0, dtype=np.float64)
    total = np.zeros_like(w0)
    for fn in grad_fns:
        g = fn(w0)
        correction = (
            alpha * hessian_vector_product(fn, w0, total, eps=eps)
            if np.any(total)
            else 0.0
        )
        e = g - correction
        total = total + e
    return total


def hessian_pair_combine(
    ga: np.ndarray,
    gb: np.ndarray,
    fn_a: GradFn,
    fn_b: GradFn,
    w0: np.ndarray,
    alpha: float,
    eps: float = 1e-4,
) -> np.ndarray:
    """Both-orders averaged pairwise combination with exact Hessians.

    The Hessian-exact analogue of ``Adasum(ga, gb)`` (Section 3.3)::

        ga + gb − (α/2)·H_b·ga − (α/2)·H_a·gb
    """
    hb_ga = hessian_vector_product(fn_b, w0, ga, eps=eps)
    ha_gb = hessian_vector_product(fn_a, w0, gb, eps=eps)
    return ga + gb - 0.5 * alpha * hb_ga - 0.5 * alpha * ha_gb


def hessian_tree_combine(
    grad_fns: Sequence[GradFn],
    w0: np.ndarray,
    alpha: float,
    eps: float = 1e-4,
) -> np.ndarray:
    """Recursive-tree Hessian-exact combination of ``n`` minibatches.

    Mirrors Adasum's recursion (Section 3.4): combine the left and right
    halves, then combine the two effective gradients treating each half
    as a single loss whose Hessian is the mean of its members' — the
    reference signal for Figure 2.  Requires power-of-two counts.
    """
    n = len(grad_fns)
    if n & (n - 1):
        raise ValueError(f"hessian_tree_combine needs power-of-two inputs, got {n}")
    w0 = np.asarray(w0, dtype=np.float64)

    def mean_fn(fns: List[GradFn]) -> GradFn:
        def fn(w: np.ndarray) -> np.ndarray:
            return np.mean([f(w) for f in fns], axis=0)

        return fn

    def recurse(fns: List[GradFn]) -> Tuple[np.ndarray, GradFn]:
        if len(fns) == 1:
            return fns[0](w0), fns[0]
        mid = len(fns) // 2
        ga, fa = recurse(fns[:mid])
        gb, fb = recurse(fns[mid:])
        combined = hessian_pair_combine(ga, gb, fa, fb, w0, alpha, eps=eps)
        return combined, mean_fn([fa, fb])

    result, _ = recurse(list(grad_fns))
    return result
