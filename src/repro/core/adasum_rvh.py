"""Algorithm 1 — recursive vector halving with Adasum (paper Section 4.2.1).

Adasum is not elementwise (it needs whole-gradient dot products and
norms), so it cannot be a plain MPI user-defined reduction.  Algorithm 1
modifies the RVH allreduce: at each recursion level every rank holds
*slices* ``a`` (left neighbor's half) and ``b`` (right neighbor's half)
of a logical vector shared by the ``2·d`` ranks in its group; the ranks
compute partial dot products ``[a·b, a·a, b·b]``, finish them with a
small group allreduce, and apply the Adasum combination locally.

Per-layer support: when a :class:`~repro.comm.fusion.FusedTensorLayout`
is supplied, the partial products are computed *per tensor slice* within
the owned range, and the combination uses per-layer scale factors
(Sections 3.6 + 4.4.3 — fusion with boundary bookkeeping).

The implementation follows the paper's pseudocode line by line and is
validated against the sequential :func:`repro.core.operator.adasum_tree`
reference in ``tests/core/test_adasum_rvh.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import allreduce_group
from repro.comm.fusion import FusedTensorLayout
from repro.comm.transport import Cluster, Comm

_EPS = 1e-30


def _layer_slices(
    layout: Optional[FusedTensorLayout],
    boundaries: Optional[Sequence[int]] = None,
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Normalize either layout form to ``(lo, hi)`` tensor slices.

    The flat entry points speak plain boundary offsets (the
    ``layout.boundaries()`` convention: ``len = #tensors + 1``) so arena
    rows never need to be packed back into a named-dict layout.
    """
    if layout is not None:
        return tuple(layout.slices)
    if boundaries is None:
        return None
    bs = list(boundaries)
    return tuple(zip(bs[:-1], bs[1:]))


def _layer_ranges(
    local_size: int, start: int, slices: Optional[Sequence[Tuple[int, int]]]
) -> List[Optional[Tuple[int, int]]]:
    """Local (lo, hi) range of each layout tensor within this rank's slice.

    The returned list always has one entry per layout tensor (``None``
    when the tensor does not intersect the slice), so the partial-product
    arrays have identical shape on every rank of a group — a requirement
    for the elementwise group allreduce on line 17 of Algorithm 1.
    """
    if slices is None:
        return [(0, local_size)]
    stop = start + local_size
    ranges: List[Optional[Tuple[int, int]]] = []
    for lo, hi in slices:
        a, b = max(lo, start), min(hi, stop)
        ranges.append((a - start, b - start) if a < b else None)
    return ranges


def _partial_products(
    a: np.ndarray, b: np.ndarray, ranges: Sequence[Optional[Tuple[int, int]]]
) -> np.ndarray:
    """Partial ``[a·b, a·a, b·b]`` per layer slice (zeros when absent)."""
    v = np.zeros((len(ranges), 3), dtype=np.float64)
    for i, rng in enumerate(ranges):
        if rng is None:
            continue
        lo, hi = rng
        aa = a[lo:hi].astype(np.float64, copy=False)
        bb = b[lo:hi].astype(np.float64, copy=False)
        v[i, 0] = aa @ bb
        v[i, 1] = aa @ aa
        v[i, 2] = bb @ bb
    return v


def _apply_combination(
    a: np.ndarray,
    b: np.ndarray,
    v: np.ndarray,
    ranges: Sequence[Optional[Tuple[int, int]]],
) -> np.ndarray:
    """Line 18 of Algorithm 1: ``x' = a(1 - v1/2v2) + b(1 - v1/2v3)``."""
    out = np.empty_like(a)
    for rng, (dot, na, nb) in zip(ranges, v):
        if rng is None:
            continue
        lo, hi = rng
        s1 = 1.0 - dot / (2.0 * na) if na > _EPS else 1.0
        s2 = 1.0 - dot / (2.0 * nb) if nb > _EPS else 1.0
        out[lo:hi] = (
            s1 * a[lo:hi].astype(np.float64, copy=False)
            + s2 * b[lo:hi].astype(np.float64, copy=False)
        ).astype(a.dtype, copy=False)
    return out


def adasum_rvh(
    comm: Comm,
    x: np.ndarray,
    layout: Optional[FusedTensorLayout] = None,
) -> np.ndarray:
    """AdasumRVH(x): the full Algorithm 1 including the allgather phase.

    Requires a power-of-two cluster.  ``x`` is this rank's flat gradient
    (or fused gradient buffer); the return value is the Adasum-combined
    vector, identical on every rank.
    """
    return _rvh_flat(comm, x, boundaries=None, _slices=_layer_slices(layout))


def _rvh_flat(
    comm: Comm,
    row: np.ndarray,
    boundaries: Optional[Sequence[int]] = None,
    _slices: Optional[Tuple[Tuple[int, int], ...]] = None,
) -> np.ndarray:
    """AdasumRVH over a flat arena row, no dict/layout packing.

    ``row`` is this rank's flat gradient buffer (e.g. one
    :class:`~repro.core.arena.GradientArena` row); ``boundaries`` are
    the per-tensor offsets (``layout.boundaries()`` convention) for the
    per-layer dot products, or ``None`` for whole-vector Adasum.
    Bit-exact with :func:`adasum_rvh` given the matching layout
    (asserted in ``tests/core/test_adasum_rvh.py``).  Reached through
    ``get_strategy("adasum", "rvh").combine_comm``.
    """
    size = comm.size
    if size & (size - 1):
        raise ValueError(f"AdasumRVH requires power-of-two ranks, got {size}")
    flat = np.ascontiguousarray(row).reshape(-1)
    if size == 1:
        return flat.copy()
    slices = _slices if _slices is not None else _layer_slices(None, boundaries)
    return _adasum_rvh_level(comm, flat, d=1, start=0, slices=slices)


def adasum_rvh_flat(
    comm: Comm,
    row: np.ndarray,
    boundaries: Optional[Sequence[int]] = None,
    _slices: Optional[Tuple[Tuple[int, int], ...]] = None,
) -> np.ndarray:
    """AdasumRVH over a flat arena row.

    .. deprecated:: forward to
       ``get_strategy("adasum", "rvh").combine_comm``.
    """
    from repro.core.deprecation import warn_deprecated

    warn_deprecated("adasum_rvh_flat", 'get_strategy("adasum", "rvh").combine_comm')
    if _slices is not None:
        return _rvh_flat(comm, row, boundaries, _slices)
    from repro.core.strategies import get_strategy

    return get_strategy("adasum", "rvh").combine_comm(comm, row, boundaries)


def _adasum_rvh_level(
    comm: Comm, x: np.ndarray, d: int, start: int,
    slices: Optional[Tuple[Tuple[int, int], ...]],
) -> np.ndarray:
    """One recursion level of Algorithm 1 (lines 2-24).

    ``start`` tracks the absolute offset of ``x`` within the original
    vector so per-layer boundaries can be resolved.  Returns this
    rank's reconstructed full vector for its sub-range (after the
    allgather on lines 22-24).
    """
    rank = comm.rank
    mid = x.size // 2
    # The half-exchange goes through ``sendrecv`` so an active FaultPlan
    # can retransmit dropped halves without algorithm-level changes.
    if (rank // d) % 2 == 0:  # Left neighbor (lines 3-7)
        nghr = rank + d
        a = x[:mid]
        b = comm.sendrecv(x[mid:], nghr)  # swap halves: keep left, get theirs
        my_start = start
    else:  # Right neighbor (lines 8-13)
        nghr = rank - d
        a = comm.sendrecv(x[:mid], nghr)  # swap halves: keep right, get theirs
        b = x[mid:]
        my_start = start + mid

    d2 = 2 * d
    # Lines 15-17: partial dot products finished via group allreduce.
    ranges = _layer_ranges(a.size, my_start, slices)
    v = _partial_products(a, b, ranges)
    comm.compute(3 * a.nbytes, label="dot-products")
    group = [(rank // d2) * d2 + i for i in range(d2)]
    v = allreduce_group(comm, v, group)
    # Line 18: apply the Adasum combination on the owned half.
    xp = _apply_combination(a, b, v, ranges)
    comm.compute(2 * xp.nbytes, label="adasum-combine")

    # Line 19-21: recurse until all ranks share slices of one vector.
    if d2 < comm.size:
        xp = _adasum_rvh_level(comm, xp, d2, my_start, slices)

    # Lines 22-24: allgather phase — exchange halves on the way out.
    y = comm.sendrecv(xp, nghr)
    if (rank // d) % 2 == 0:
        return np.concatenate([xp, y])
    return np.concatenate([y, xp])


def allreduce_adasum_cluster(
    grads: Sequence[np.ndarray],
    layout: Optional[FusedTensorLayout] = None,
    network=None,
) -> Tuple[np.ndarray, float]:
    """Convenience driver: run AdasumRVH over a fresh simulated cluster.

    ``grads[r]`` is rank ``r``'s flat gradient.  Returns the combined
    vector (validated identical across ranks) and the simulated latency.
    """
    size = len(grads)
    cluster = Cluster(size, network=network)
    results = cluster.run(adasum_rvh, rank_args=[(g, layout) for g in grads])
    for r in range(1, size):
        if not np.allclose(results[r], results[0], rtol=1e-5, atol=1e-7):
            raise AssertionError(f"rank {r} disagrees with rank 0 after AdasumRVH")
    return results[0], cluster.max_clock()
