"""Gradient-reduction strategies plugged into the training simulator.

.. deprecated::
    The reducer class hierarchy that used to live here is now a thin
    compatibility layer over the strategy registry in
    :mod:`repro.core.strategies` — the single source of reduction
    arithmetic.  New code should build reducers declaratively::

        from repro.core.distributed_optimizer import make_reducer
        reducer = make_reducer("adasum", topology="tree")

    or go through :class:`repro.core.config.RunConfig`.  The legacy
    classes below (``SumReducer`` / ``AverageReducer`` /
    ``AdasumReducer``) keep their exact constructor signatures and
    bitwise behaviour but emit a :class:`DeprecationWarning` once per
    process when instantiated.

The paper compares three ways to combine per-rank gradients:

* ``sum`` — Horovod's default (synchronous SGD; the learning rate
  implicitly scales with the rank count);
* ``average`` — the mean, equivalent to Sum with a 1/N LR;
* ``adasum`` — the paper's operator, per layer by default
  (Section 3.6) with a whole-model ablation switch, and tree, linear,
  ring, or RVH recursion (Sections 3.4 / 4.2).
"""

from __future__ import annotations

from repro.core.deprecation import warn_deprecated
from repro.core.strategies import (  # noqa: F401  (compatibility re-exports)
    GradientReducer,
    StrategyReducer,
    _check_consistent,
    _flat_sum,
)

__all__ = [
    "GradientReducer",
    "StrategyReducer",
    "SumReducer",
    "AverageReducer",
    "AdasumReducer",
]


class SumReducer(StrategyReducer):
    """Plain sum across ranks (Horovod's default op for synchronous SGD).

    .. deprecated:: use ``make_reducer("sum")`` /
       ``StrategyReducer(op="sum")``.
    """

    def __init__(self):
        warn_deprecated("SumReducer", 'make_reducer("sum")')
        super().__init__(op="sum", topology="tree")

    def __repr__(self) -> str:
        return "SumReducer()"


class AverageReducer(StrategyReducer):
    """Mean across ranks (Sum with an implicit 1/N learning-rate factor).

    .. deprecated:: use ``make_reducer("average")`` /
       ``StrategyReducer(op="average")``.
    """

    def __init__(self):
        warn_deprecated("AverageReducer", 'make_reducer("average")')
        super().__init__(op="average", topology="tree")

    def __repr__(self) -> str:
        return "AverageReducer()"


class AdasumReducer(StrategyReducer):
    """The paper's adaptive-sum reduction.

    .. deprecated:: use ``make_reducer("adasum", topology=...)`` /
       ``StrategyReducer(op="adasum", topology=...)``.  The legacy
       ``(tree, allow_non_pow2)`` flag pair maps onto the topology axis:
       ``(True, False)`` → ``"tree"``, ``(True, True)`` → ``"tree_any"``,
       ``(False, _)`` → ``"linear"``.

    Parameters
    ----------
    per_layer:
        Apply Adasum independently per layer (paper default, §3.6).
        ``False`` flattens the whole model into one vector (ablation).
    tree:
        Binary-tree recursion (AdasumRVH order); ``False`` uses the
        linear/"ring" order (§4.2.3 ablation).
    allow_non_pow2:
        Accept non-power-of-two rank counts in tree mode via the elastic
        geometry (the ``tree_any`` topology), which splits at the
        largest power of two below ``n``.  Power-of-two counts stay
        bit-exact with the strict tree.  Off by default so accidental
        odd worlds still fail loudly in non-elastic code.
    """

    def __init__(
        self,
        per_layer: bool = True,
        tree: bool = True,
        allow_non_pow2: bool = False,
    ):
        warn_deprecated("AdasumReducer", 'make_reducer("adasum", topology=...)')
        if tree:
            topology = "tree_any" if allow_non_pow2 else "tree"
        else:
            topology = "linear"
        super().__init__(op="adasum", topology=topology, per_layer=per_layer)
        # Preserve the legacy attribute surface exactly.
        self.tree = tree
        self.allow_non_pow2 = allow_non_pow2

    def __repr__(self) -> str:
        return (
            f"AdasumReducer(per_layer={self.per_layer}, tree={self.tree}, "
            f"allow_non_pow2={self.allow_non_pow2})"
        )
