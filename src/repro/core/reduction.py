"""Gradient-reduction strategies plugged into the training simulator.

The paper compares three ways to combine per-rank gradients:

* ``SumReducer`` — Horovod's default ``Sum`` (synchronous SGD; the
  learning rate implicitly scales with the rank count);
* ``AverageReducer`` — the mean, equivalent to Sum with a 1/N LR;
* ``AdasumReducer`` — the paper's operator, per layer by default
  (Section 3.6) with a whole-model ablation switch, and tree or linear
  recursion (Section 3.4 / 4.2.3).

Reducers consume ``grad_dicts`` — one ``{layer_name: gradient}`` mapping
per rank — and produce the combined update, so the same trainer code
drives every experiment in Section 5.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.operator import (
    adasum_linear,
    adasum_linear_flat,
    adasum_per_layer,
    adasum_tree,
    adasum_tree_any,
    adasum_tree_any_flat,
    adasum_tree_flat,
)


def _check_consistent(grad_dicts: Sequence[Mapping[str, np.ndarray]]) -> List[str]:
    if not grad_dicts:
        raise ValueError("need at least one rank's gradients")
    names = list(grad_dicts[0].keys())
    for i, d in enumerate(grad_dicts[1:], start=1):
        if list(d.keys()) != names:
            raise ValueError(f"rank {i} layer names differ from rank 0")
    return names


def _flat_sum(data: np.ndarray, boundaries: Sequence[int] = None) -> np.ndarray:
    """Float64 axis-0 sum of flat rows, bit-exact with the dict path.

    One subtlety: for a single-element layer the dict path sums a
    contiguous ``(ranks, 1)`` stack, where NumPy applies pairwise
    summation instead of the row-sequential order used for wider
    layers.  Those columns are re-summed from a contiguous copy so the
    association matches exactly.
    """
    total = np.sum(data, axis=0, dtype=np.float64)
    if boundaries is not None:
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            if hi - lo == 1:
                total[lo] = np.sum(
                    np.ascontiguousarray(data[:, lo]), dtype=np.float64
                )
    return total


class GradientReducer:
    """Strategy interface: combine one gradient dict per rank into one.

    ``post_optimizer`` tells the distributed optimizer *where* to apply
    the reduction: synchronous SGD reduces raw gradients before the
    optimizer step, while Adasum with stateful optimizers (Adam/LAMB)
    reduces the post-optimizer model delta (paper Figure 3).

    Each reducer also ships a *flat* code path (``reduce_flat`` /
    ``reduce_arena``) operating on one contiguous buffer per rank with
    per-layer boundaries from the fusion layout — the fused-tensor
    architecture of paper §4.4.3.  Flat results are bit-exact with
    ``reduce`` on the equivalent dicts (property-tested).
    """

    name: str = "base"
    post_optimizer: bool = False

    def reduce(
        self, grad_dicts: Sequence[Mapping[str, np.ndarray]]
    ) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def reduce_flat(
        self, data: np.ndarray, boundaries: Sequence[int] = None
    ) -> np.ndarray:
        """Combine ``(ranks, size)`` flat rows into one flat buffer."""
        raise NotImplementedError

    def reduce_arena(self, arena) -> np.ndarray:
        """Combine a :class:`~repro.core.arena.GradientArena`'s rows."""
        return self.reduce_flat(arena.data, arena.layout.boundaries())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SumReducer(GradientReducer):
    """Plain sum across ranks (Horovod's default op for synchronous SGD)."""

    name = "sum"

    def reduce(self, grad_dicts):
        names = _check_consistent(grad_dicts)
        return {
            n: np.sum([d[n] for d in grad_dicts], axis=0, dtype=np.float64).astype(
                grad_dicts[0][n].dtype
            )
            for n in names
        }

    def reduce_flat(self, data, boundaries=None):
        # Axis-0 accumulation order per element is identical to the
        # per-layer dict sums, so this is bit-exact with ``reduce``.
        total = _flat_sum(data, boundaries)
        return total.astype(data.dtype)


class AverageReducer(GradientReducer):
    """Mean across ranks (Sum with an implicit 1/N learning-rate factor)."""

    name = "average"

    def reduce(self, grad_dicts):
        names = _check_consistent(grad_dicts)
        n_ranks = len(grad_dicts)
        return {
            n: (
                np.sum([d[n] for d in grad_dicts], axis=0, dtype=np.float64) / n_ranks
            ).astype(grad_dicts[0][n].dtype)
            for n in names
        }

    def reduce_flat(self, data, boundaries=None):
        total = _flat_sum(data, boundaries)
        total /= data.shape[0]
        return total.astype(data.dtype)


class AdasumReducer(GradientReducer):
    """The paper's adaptive-sum reduction.

    Parameters
    ----------
    per_layer:
        Apply Adasum independently per layer (paper default, §3.6).
        ``False`` flattens the whole model into one vector (ablation).
    tree:
        Binary-tree recursion (AdasumRVH order); ``False`` uses the
        linear/"ring" order (§4.2.3 ablation).
    allow_non_pow2:
        Accept non-power-of-two rank counts in tree mode via the elastic
        geometry (:func:`~repro.core.operator.adasum_tree_any`), which
        splits at the largest power of two below ``n``.  Power-of-two
        counts stay bit-exact with the strict tree.  Off by default so
        accidental odd worlds still fail loudly in non-elastic code.
    """

    name = "adasum"
    post_optimizer = True

    def __init__(
        self,
        per_layer: bool = True,
        tree: bool = True,
        allow_non_pow2: bool = False,
    ):
        self.per_layer = per_layer
        self.tree = tree
        self.allow_non_pow2 = allow_non_pow2

    def reduce(self, grad_dicts):
        names = _check_consistent(grad_dicts)
        n = len(grad_dicts)
        if self.tree and n & (n - 1) and not self.allow_non_pow2:
            raise ValueError(f"tree Adasum needs power-of-two ranks, got {n}")
        if self.per_layer:
            return adasum_per_layer(
                grad_dicts, tree=self.tree, allow_non_pow2=self.allow_non_pow2
            )
        # Whole-model: flatten, combine, unflatten.
        shapes = {name: grad_dicts[0][name].shape for name in names}
        sizes = {name: grad_dicts[0][name].size for name in names}
        flats = [
            np.concatenate([d[name].reshape(-1) for name in names]) for d in grad_dicts
        ]
        if self.tree:
            tree_fn = adasum_tree_any if self.allow_non_pow2 else adasum_tree
            combined = tree_fn(flats)
        else:
            combined = adasum_linear(flats)
        out: Dict[str, np.ndarray] = {}
        offset = 0
        for name in names:
            out[name] = combined[offset : offset + sizes[name]].reshape(shapes[name])
            offset += sizes[name]
        return out

    def reduce_flat(self, data, boundaries=None):
        n = data.shape[0]
        if self.tree and n & (n - 1) and not self.allow_non_pow2:
            raise ValueError(f"tree Adasum needs power-of-two ranks, got {n}")
        # Whole-model mode ignores layer boundaries (one flat vector).
        bounds = boundaries if self.per_layer else None
        if self.tree:
            if self.allow_non_pow2:
                return adasum_tree_any_flat(data, bounds)
            return adasum_tree_flat(data, bounds)
        return adasum_linear_flat(data, bounds)

    def __repr__(self) -> str:
        return (
            f"AdasumReducer(per_layer={self.per_layer}, tree={self.tree}, "
            f"allow_non_pow2={self.allow_non_pow2})"
        )
