"""The Adasum operator (paper Section 3).

For gradients ``g1``, ``g2``::

    Adasum(g1, g2) = (1 - g1·g2 / (2‖g1‖²)) g1 + (1 - g1·g2 / (2‖g2‖²)) g2

Key properties (tested in ``tests/core/test_operator.py``):

* orthogonal gradients  → exact sum ``g1 + g2``;
* parallel gradients of equal norm → exact average ``(g1 + g2) / 2``;
* the operator is symmetric and scale-covariant under joint scaling;
* dot products and norms accumulate in float64 even for fp16/fp32
  inputs (paper Section 4.4.1 — "crucial for improved convergence").

The recursive applications below mirror Section 3.4: the *tree*
(recursive halving) form used by AdasumRVH, and the *linear* form that
the paper's "ring" implementation corresponds to.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Norms below this are treated as zero to avoid division blow-ups.
_EPS = 1e-30


def adasum_scale_factors(g1: np.ndarray, g2: np.ndarray) -> Tuple[float, float]:
    """Scalars ``(s1, s2)`` such that ``Adasum(g1, g2) = s1·g1 + s2·g2``.

    Dot products and squared norms accumulate in float64 regardless of
    input dtype.  Degenerate inputs (either gradient ~0) fall back to a
    plain sum, which is the correct limit.
    """
    f1 = g1.reshape(-1).astype(np.float64, copy=False)
    f2 = g2.reshape(-1).astype(np.float64, copy=False)
    dot = float(f1 @ f2)
    n1 = float(f1 @ f1)
    n2 = float(f2 @ f2)
    s1 = 1.0 - dot / (2.0 * n1) if n1 > _EPS else 1.0
    s2 = 1.0 - dot / (2.0 * n2) if n2 > _EPS else 1.0
    return s1, s2


def adasum(
    g1: np.ndarray, g2: np.ndarray, out: np.ndarray = None
) -> np.ndarray:
    """Pairwise Adasum of two same-shaped gradients.

    ``out`` (same shape/dtype as ``g1``) receives the result in place
    when given; scalar accumulation still happens in float64.
    """
    if g1.shape != g2.shape:
        raise ValueError(f"shape mismatch: {g1.shape} vs {g2.shape}")
    s1, s2 = adasum_scale_factors(g1, g2)
    combined = s1 * g1.astype(np.float64, copy=False) + s2 * g2.astype(
        np.float64, copy=False
    )
    if out is None:
        return combined.astype(g1.dtype, copy=False)
    np.copyto(out, combined, casting="same_kind")
    return out


# ----------------------------------------------------------------------
# Flat-buffer kernels (fused-tensor path, paper §4.4.3)
# ----------------------------------------------------------------------
def _flat_pair_scales(
    a: np.ndarray, b: np.ndarray, boundaries: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-layer ``(s1, s2)`` scale vectors for two float64 flat rows.

    Each layer's dot/norms are plain ``np.dot`` over the contiguous
    float64 slice — the identical accumulation the dict path performs on
    ``g.reshape(-1).astype(np.float64)``, so scale factors match bit for
    bit.
    """
    n_layers = len(boundaries) - 1
    s1 = np.empty(n_layers)
    s2 = np.empty(n_layers)
    for layer in range(n_layers):
        lo, hi = boundaries[layer], boundaries[layer + 1]
        x, y = a[lo:hi], b[lo:hi]
        dot = float(x @ y)
        n1 = float(x @ x)
        n2 = float(y @ y)
        s1[layer] = 1.0 - dot / (2.0 * n1) if n1 > _EPS else 1.0
        s2[layer] = 1.0 - dot / (2.0 * n2) if n2 > _EPS else 1.0
    return s1, s2


def _adasum_flat_pair(
    a: np.ndarray,
    b: np.ndarray,
    boundaries: Sequence[int],
    tmp: np.ndarray,
    out: np.ndarray,
) -> None:
    """In-place pairwise Adasum of float64 rows ``a``, ``b`` into ``out``.

    ``out`` may alias ``a``.  ``tmp`` is a caller-provided float64
    scratch row.  Each layer slice is scaled by its float64 scalar — the
    same multiplication the dict path performs per layer — so results
    are bit-identical while the row-wide add stays a single fused pass.
    """
    s1, s2 = _flat_pair_scales(a, b, boundaries)
    for layer in range(len(boundaries) - 1):
        lo, hi = boundaries[layer], boundaries[layer + 1]
        np.multiply(b[lo:hi], s2[layer], out=tmp[lo:hi])
        np.multiply(a[lo:hi], s1[layer], out=out[lo:hi])
    out += tmp


def _flat_boundaries(size: int, boundaries) -> List[int]:
    if boundaries is None:
        return [0, size]
    bounds = list(boundaries)
    if bounds[0] != 0 or bounds[-1] != size:
        raise ValueError(f"boundaries {bounds[0]}..{bounds[-1]} != buffer [0, {size})")
    return bounds


def adasum_flat(
    g1: np.ndarray,
    g2: np.ndarray,
    boundaries: Sequence[int] = None,
    out: np.ndarray = None,
) -> np.ndarray:
    """Pairwise Adasum over flat 1-D buffers with per-layer boundaries.

    ``boundaries`` delimits layers in the flat buffer
    (``layout.boundaries()``); ``None`` treats the whole buffer as one
    layer (whole-model Adasum).  Equivalent to slicing both buffers per
    layer and calling :func:`adasum` on each slice, but runs in-place
    vectorized kernels over the full row.
    """
    if g1.shape != g2.shape or g1.ndim != 1:
        raise ValueError(f"flat buffers required: {g1.shape} vs {g2.shape}")
    bounds = _flat_boundaries(g1.size, boundaries)
    a = g1.astype(np.float64)
    b = g2.astype(np.float64, copy=False)
    tmp = np.empty(g1.size)
    _adasum_flat_pair(a, b, bounds, tmp, out=a)
    if out is None:
        return a.astype(g1.dtype, copy=False)
    np.copyto(out, a, casting="same_kind")
    return out


class _FlatReducePlan:
    """Reusable scratch rows + prebound per-layer kernels for one geometry.

    The pairwise combine is called ``ranks - 1`` times per reduction and
    every call runs 3 dots + 2 scalings per layer; for models with many
    small layers the NumPy dispatch cost of those calls rivals the
    arithmetic.  The plan owns the two float64 scratch rows, the
    storage-dtype winner buffer, and — since the scratches are reused
    for every pair — the per-layer slice *views* and their bound
    ``ndarray.dot`` methods, so the hot loop does no view construction
    and no attribute lookups.
    """

    __slots__ = ("key", "ab", "a64", "b64", "win", "layers")

    def __init__(self, size, bounds, nwin, dtype) -> None:
        self.key = (size, tuple(bounds), nwin, dtype)
        self.ab = np.empty((2, size))
        self.a64 = self.ab[0]
        self.b64 = self.ab[1]
        self.win = np.empty((nwin, size), dtype=dtype)
        self.layers: List[tuple] = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            x = self.a64[lo:hi]
            y = self.b64[lo:hi]
            self.layers.append((x, y, x.dot, y.dot))

    def _combine_loaded(self, dst: np.ndarray) -> None:
        """Adasum the two loaded scratch rows into ``dst``.

        Bit-identical to the dict path's pairwise combine: float64 dots
        per layer (``float(x @ y)`` accumulation), one rounded multiply
        per operand, and a float64 add that rounds once into the storage
        dtype — ``np.add(..., out=dst, dtype=np.float64)`` is exactly
        ``(s1*g1 + s2*g2).astype(dtype)`` minus the intermediate pass.
        """
        mult = np.multiply
        for x, y, xdot, ydot in self.layers:
            dot = float(xdot(y))
            n1 = float(xdot(x))
            n2 = float(ydot(y))
            s1 = 1.0 - dot / (2.0 * n1) if n1 > _EPS else 1.0
            s2 = 1.0 - dot / (2.0 * n2) if n2 > _EPS else 1.0
            mult(y, s2, out=y)
            mult(x, s1, out=x)
        np.add(self.a64, self.b64, out=dst, dtype=np.float64, casting="same_kind")

    def combine_pair(self, src2: np.ndarray, dst: np.ndarray) -> None:
        """Combine two *adjacent* rows (``src2`` is ``(2, size)``) into ``dst``.

        Loading both operands with one 2-row widening copy halves the
        dispatch cost of the loads; ``dst`` may alias a source row since
        both rows are consumed into the scratches first.
        """
        np.copyto(self.ab, src2, casting="same_kind")
        self._combine_loaded(dst)

    def combine(self, x_src: np.ndarray, y_src: np.ndarray, dst: np.ndarray) -> None:
        """``dst = narrow(Adasum(widen(x_src), widen(y_src)))``."""
        np.copyto(self.a64, x_src, casting="same_kind")
        np.copyto(self.b64, y_src, casting="same_kind")
        self._combine_loaded(dst)


#: Small per-thread keyed cache — training hammers a handful of geometries
#: (one per overlap bucket plus the full row), while property tests sweep
#: many tiny ones (cheap to rebuild once the cap evicts them).
_plan_cache = threading.local()
_PLAN_CACHE_CAP = 32


def _flat_reduce_plan(size, bounds, nwin, dtype) -> _FlatReducePlan:
    plans = getattr(_plan_cache, "plans", None)
    if plans is None:
        plans = _plan_cache.plans = {}
    key = (size, tuple(bounds), nwin, dtype)
    plan = plans.get(key)
    if plan is None:
        if len(plans) >= _PLAN_CACHE_CAP:  # drop the oldest geometry (FIFO)
            plans.pop(next(iter(plans)))
        plan = plans[key] = _FlatReducePlan(size, bounds, nwin, dtype)
    return plan


def _adasum_flat_reduce(
    data: np.ndarray, boundaries: Sequence[int], tree: bool
) -> np.ndarray:
    """Tree or linear Adasum over the rows of a ``(ranks, size)`` buffer.

    Matches the dict path bit for bit: every pairwise result rounds
    through the storage dtype (the dict path's ``astype(g1.dtype)``
    after each combine) before being re-widened to float64 for the next
    level's scalar accumulation.  Because of that rounding, the narrow
    row *is* the authoritative intermediate — so winners are stored in
    the storage dtype and float64 exists only in the plan's two scratch
    rows, which stay cache-resident across the whole reduction instead
    of widening all ranks up front.  ``data`` itself is never written.
    """
    ranks, size = data.shape
    if ranks == 1:
        return data[0].copy()
    bounds = _flat_boundaries(size, boundaries)
    plan = _flat_reduce_plan(size, bounds, max(1, ranks // 2), data.dtype)
    win = plan.win
    if tree:
        # Winners pack compactly into ``win[0:n]`` after every level, so
        # each pair is adjacent and loads with one 2-row widening copy.
        combine_pair = plan.combine_pair
        for k in range(ranks // 2):
            combine_pair(data[2 * k : 2 * k + 2], win[k])
        n = ranks // 2
        while n > 1:
            for m in range(n // 2):
                combine_pair(win[2 * m : 2 * m + 2], win[m])
            n //= 2
        return win[0].copy()
    acc = win[0]
    plan.combine(data[0], data[1], acc)
    for r in range(2, ranks):
        plan.combine(acc, data[r], acc)
    return acc.copy()


def adasum_tree_flat(
    data: np.ndarray, boundaries: Sequence[int] = None
) -> np.ndarray:
    """Binary-tree Adasum over ``(ranks, size)`` flat rows (power of two).

    .. deprecated:: forward to
       ``get_strategy("adasum", "tree").combine_flat`` (the registry in
       :mod:`repro.core.strategies`).
    """
    from repro.core.deprecation import warn_deprecated
    from repro.core.strategies import get_strategy

    warn_deprecated("adasum_tree_flat", 'get_strategy("adasum", "tree").combine_flat')
    ranks = data.shape[0]
    if ranks == 0:
        raise ValueError("adasum_tree_flat needs at least one gradient row")
    if ranks & (ranks - 1):
        raise ValueError(f"adasum_tree_flat requires a power-of-two count, got {ranks}")
    return get_strategy("adasum", "tree").combine_flat(data, boundaries)


def adasum_linear_flat(
    data: np.ndarray, boundaries: Sequence[int] = None
) -> np.ndarray:
    """Linear (left-fold) Adasum over ``(ranks, size)`` flat rows.

    .. deprecated:: forward to
       ``get_strategy("adasum", "linear").combine_flat``.
    """
    from repro.core.deprecation import warn_deprecated
    from repro.core.strategies import get_strategy

    warn_deprecated(
        "adasum_linear_flat", 'get_strategy("adasum", "linear").combine_flat'
    )
    if data.shape[0] == 0:
        raise ValueError("adasum_linear_flat needs at least one gradient row")
    return get_strategy("adasum", "linear").combine_flat(data, boundaries)


def adasum_tree(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Recursive binary-tree application (paper Section 3.4).

    ``Adasum(g[0:n]) = Adasum(Adasum(g[0:n/2]), Adasum(g[n/2:n]))`` —
    the bandwidth-optimal recursion AdasumRVH implements.  Requires a
    power-of-two count; emulates exponentially many SGD paths.
    """
    n = len(grads)
    if n == 0:
        raise ValueError("adasum_tree needs at least one gradient")
    if n & (n - 1):
        raise ValueError(f"adasum_tree requires a power-of-two count, got {n}")
    level: List[np.ndarray] = list(grads)
    while len(level) > 1:
        level = [adasum(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def largest_pow2_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (``n >= 2``)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    p = 1 << (n.bit_length() - 1)
    return p if p < n else p // 2


def adasum_tree_any(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Binary-tree Adasum for *any* rank count (elastic world geometry).

    A power-of-two count reduces exactly like :func:`adasum_tree`.  A
    non-power-of-two count ``n`` splits at the largest power of two
    ``p < n``::

        Adasum(g[0:n]) = Adasum(Adasum(g[0:p]), Adasum(g[p:n]))

    so every power-of-two block is bit-exact against the reference
    :func:`adasum_tree` on that block, and shrunk worlds (e.g. 8 -> 5
    after three rank failures) keep a well-defined tree geometry.  For
    ``n = 5`` this is ``Adasum(adasum_tree(g[0:4]), g[4])``.
    """
    n = len(grads)
    if n == 0:
        raise ValueError("adasum_tree_any needs at least one gradient")
    if n & (n - 1) == 0:
        return adasum_tree(grads)
    p = largest_pow2_below(n)
    return adasum(adasum_tree_any(grads[:p]), adasum_tree_any(grads[p:]))


def adasum_tree_any_flat(
    data: np.ndarray, boundaries: Sequence[int] = None
) -> np.ndarray:
    """Flat-buffer :func:`adasum_tree_any` over ``(ranks, size)`` rows.

    .. deprecated:: forward to
       ``get_strategy("adasum", "tree_any").combine_flat``.

    Power-of-two counts reduce with the fast tree kernel; the
    non-power-of-two combine applies :func:`adasum_flat` in the same
    recursion order as :func:`adasum_tree_any`, so results are bit-exact
    with the dict path on equivalent per-layer inputs.
    """
    from repro.core.deprecation import warn_deprecated
    from repro.core.strategies import get_strategy

    warn_deprecated(
        "adasum_tree_any_flat", 'get_strategy("adasum", "tree_any").combine_flat'
    )
    if data.shape[0] == 0:
        raise ValueError("adasum_tree_any_flat needs at least one gradient row")
    return get_strategy("adasum", "tree_any").combine_flat(data, boundaries)


def adasum_linear(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Linear (left-fold) application — the "ring" variant of §4.2.3.

    ``Adasum(g[0,n+1]) = Adasum(Adasum(g[0,n]), g[n+1])``.  Any count.
    """
    if not grads:
        raise ValueError("adasum_linear needs at least one gradient")
    acc = grads[0]
    for g in grads[1:]:
        acc = adasum(acc, g)
    return acc


def adasum_per_layer(
    grad_dicts: Sequence[Mapping[str, np.ndarray]],
    tree: bool = True,
    allow_non_pow2: bool = False,
) -> Dict[str, np.ndarray]:
    """Apply Adasum independently per layer (paper Section 3.6).

    ``grad_dicts[r]`` maps layer name → gradient on rank ``r``.  The
    per-layer application adapts to each layer's own orthogonality
    instead of the whole flattened model's.  ``allow_non_pow2`` selects
    the elastic :func:`adasum_tree_any` geometry so shrunk worlds with a
    non-power-of-two rank count still reduce (power-of-two counts are
    unchanged bit for bit).
    """
    if not grad_dicts:
        raise ValueError("need at least one rank's gradients")
    names = list(grad_dicts[0].keys())
    for d in grad_dicts[1:]:
        if list(d.keys()) != names:
            raise ValueError("ranks disagree on layer names/order")
    if tree:
        combine = adasum_tree_any if allow_non_pow2 else adasum_tree
    else:
        combine = adasum_linear
    return {name: combine([d[name] for d in grad_dicts]) for name in names}


def orthogonality_ratio(grads: Sequence[np.ndarray], tree: bool = True) -> float:
    """Section 3.6 orthogonality metric: ``‖Adasum(g[1,n])‖² / Σᵢ ‖gᵢ‖²``.

    Equals 1 when all gradients are mutually orthogonal and reaches its
    minimum ``1/n`` when they are parallel with equal norms.
    """
    combine = adasum_tree if tree else adasum_linear
    # Flatten before the dot product: for >=2-D gradients (conv kernels)
    # ``combined @ combined`` would be a matmul, not an inner product.
    combined = combine(list(grads)).reshape(-1).astype(np.float64, copy=False)
    num = float(combined @ combined)
    den = sum(float(g.reshape(-1).astype(np.float64) @ g.reshape(-1).astype(np.float64))
              for g in grads)
    if den <= _EPS:
        return 1.0
    return num / den
