"""The Adasum operator (paper Section 3).

For gradients ``g1``, ``g2``::

    Adasum(g1, g2) = (1 - g1·g2 / (2‖g1‖²)) g1 + (1 - g1·g2 / (2‖g2‖²)) g2

Key properties (tested in ``tests/core/test_operator.py``):

* orthogonal gradients  → exact sum ``g1 + g2``;
* parallel gradients of equal norm → exact average ``(g1 + g2) / 2``;
* the operator is symmetric and scale-covariant under joint scaling;
* dot products and norms accumulate in float64 even for fp16/fp32
  inputs (paper Section 4.4.1 — "crucial for improved convergence").

The recursive applications below mirror Section 3.4: the *tree*
(recursive halving) form used by AdasumRVH, and the *linear* form that
the paper's "ring" implementation corresponds to.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Norms below this are treated as zero to avoid division blow-ups.
_EPS = 1e-30


def adasum_scale_factors(g1: np.ndarray, g2: np.ndarray) -> Tuple[float, float]:
    """Scalars ``(s1, s2)`` such that ``Adasum(g1, g2) = s1·g1 + s2·g2``.

    Dot products and squared norms accumulate in float64 regardless of
    input dtype.  Degenerate inputs (either gradient ~0) fall back to a
    plain sum, which is the correct limit.
    """
    f1 = g1.reshape(-1).astype(np.float64, copy=False)
    f2 = g2.reshape(-1).astype(np.float64, copy=False)
    dot = float(f1 @ f2)
    n1 = float(f1 @ f1)
    n2 = float(f2 @ f2)
    s1 = 1.0 - dot / (2.0 * n1) if n1 > _EPS else 1.0
    s2 = 1.0 - dot / (2.0 * n2) if n2 > _EPS else 1.0
    return s1, s2


def adasum(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """Pairwise Adasum of two same-shaped gradients."""
    if g1.shape != g2.shape:
        raise ValueError(f"shape mismatch: {g1.shape} vs {g2.shape}")
    s1, s2 = adasum_scale_factors(g1, g2)
    out = s1 * g1.astype(np.float64, copy=False) + s2 * g2.astype(np.float64, copy=False)
    return out.astype(g1.dtype, copy=False)


def adasum_tree(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Recursive binary-tree application (paper Section 3.4).

    ``Adasum(g[0:n]) = Adasum(Adasum(g[0:n/2]), Adasum(g[n/2:n]))`` —
    the bandwidth-optimal recursion AdasumRVH implements.  Requires a
    power-of-two count; emulates exponentially many SGD paths.
    """
    n = len(grads)
    if n == 0:
        raise ValueError("adasum_tree needs at least one gradient")
    if n & (n - 1):
        raise ValueError(f"adasum_tree requires a power-of-two count, got {n}")
    level: List[np.ndarray] = list(grads)
    while len(level) > 1:
        level = [adasum(level[i], level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


def adasum_linear(grads: Sequence[np.ndarray]) -> np.ndarray:
    """Linear (left-fold) application — the "ring" variant of §4.2.3.

    ``Adasum(g[0,n+1]) = Adasum(Adasum(g[0,n]), g[n+1])``.  Any count.
    """
    if not grads:
        raise ValueError("adasum_linear needs at least one gradient")
    acc = grads[0]
    for g in grads[1:]:
        acc = adasum(acc, g)
    return acc


def adasum_per_layer(
    grad_dicts: Sequence[Mapping[str, np.ndarray]], tree: bool = True
) -> Dict[str, np.ndarray]:
    """Apply Adasum independently per layer (paper Section 3.6).

    ``grad_dicts[r]`` maps layer name → gradient on rank ``r``.  The
    per-layer application adapts to each layer's own orthogonality
    instead of the whole flattened model's.
    """
    if not grad_dicts:
        raise ValueError("need at least one rank's gradients")
    names = list(grad_dicts[0].keys())
    for d in grad_dicts[1:]:
        if list(d.keys()) != names:
            raise ValueError("ranks disagree on layer names/order")
    combine = adasum_tree if tree else adasum_linear
    return {name: combine([d[name] for d in grad_dicts]) for name in names}


def orthogonality_ratio(grads: Sequence[np.ndarray], tree: bool = True) -> float:
    """Section 3.6 orthogonality metric: ``‖Adasum(g[1,n])‖² / Σᵢ ‖gᵢ‖²``.

    Equals 1 when all gradients are mutually orthogonal and reaches its
    minimum ``1/n`` when they are parallel with equal norms.
    """
    combine = adasum_tree if tree else adasum_linear
    # Flatten before the dot product: for >=2-D gradients (conv kernels)
    # ``combined @ combined`` would be a matmul, not an inner product.
    combined = combine(list(grads)).reshape(-1).astype(np.float64, copy=False)
    num = float(combined @ combined)
    den = sum(float(g.reshape(-1).astype(np.float64) @ g.reshape(-1).astype(np.float64))
              for g in grads)
    if den <= _EPS:
        return 1.0
    return num / den
