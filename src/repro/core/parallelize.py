"""Optimizer-state and effective-gradient partitioning (paper Section 4.3).

For large models the Adasum computation itself (optimizer step + delta
construction + allreduce) is parallelized across the GPUs *within* a
node, Marian-style: optimizer state is partitioned layer-aligned (never
splitting a layer) so the underlying optimizer code needs no changes;
each local GPU updates only the layers in its partition, performs the
cross-node Adasum allreduce for those layers, then broadcasts its slice
to its node peers.

The payoff measured in the paper's Table 1: the freed memory allows a
60% larger microbatch (+~10% throughput) and the model-update time
drops ~1.87×.  :class:`PartitionedAdasumEngine` reproduces the
mechanism and exposes the memory/time model that the Table 1 benchmark
evaluates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.reduction import GradientReducer
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


def partition_layers(
    layer_sizes: Mapping[str, int], num_partitions: int
) -> List[List[str]]:
    """Greedy layer-aligned partitioning balancing total parameter count.

    Unlike Marian's uniform element split, layers are kept whole
    ("state corresponding to one neural network layer falls in the same
    partition" — the simplification the paper calls out).  Layers are
    assigned largest-first to the currently lightest partition.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    parts: List[List[str]] = [[] for _ in range(num_partitions)]
    loads = [0] * num_partitions
    for name, size in sorted(layer_sizes.items(), key=lambda kv: -kv[1]):
        i = int(np.argmin(loads))
        parts[i].append(name)
        loads[i] += size
    return parts


class PartitionedAdasumEngine:
    """Executes the Figure-3 update with §4.3 partitioning.

    Parameters
    ----------
    model:
        Shared model (one logical node; its ``num_gpus`` local GPUs are
        simulated).
    optimizer:
        A single node-level optimizer; each simulated local GPU calls
        ``step_subset`` on its partition only, which is exactly the
        claimed property (the optimizer code itself is unmodified).
    num_gpus:
        Local GPUs sharing the node.
    reducer:
        Cross-node reduction applied per partition slice.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        num_gpus: int,
        reducer: GradientReducer,
    ):
        self.model = model
        self.optimizer = optimizer
        self.num_gpus = num_gpus
        self.reducer = reducer
        self.named = list(model.named_parameters())
        self.param_index = {name: i for i, (name, _) in enumerate(self.named)}
        sizes = {name: p.size for name, p in self.named}
        self.partitions = partition_layers(sizes, num_gpus)

    # ------------------------------------------------------------------
    # Memory model (drives the Table 1 microbatch-size comparison)
    # ------------------------------------------------------------------
    def replicated_state_bytes(self) -> int:
        """Optimizer-state bytes per GPU *without* partitioning."""
        return self.optimizer.state_nbytes()

    def partitioned_state_bytes(self) -> int:
        """Max optimizer-state bytes per GPU *with* partitioning."""
        per_gpu = []
        for part in self.partitions:
            total = 0
            for name in part:
                st = self.optimizer.state.get(self.param_index[name], {})
                total += sum(arr.nbytes for arr in st.values())
            per_gpu.append(total)
        return max(per_gpu) if per_gpu else 0

    # ------------------------------------------------------------------
    # Update execution
    # ------------------------------------------------------------------
    def update(
        self,
        local_grads: Mapping[str, np.ndarray],
        remote_deltas: Sequence[Mapping[str, np.ndarray]] = (),
    ) -> Dict[str, np.ndarray]:
        """One partitioned Figure-3 update on this node.

        ``local_grads`` is this node's accumulated gradient;
        ``remote_deltas`` are the effective gradients the other nodes
        contribute to the cross-node Adasum (may be empty for a
        single-node run).  Each simulated local GPU ``g`` handles only
        ``partitions[g]``: optimizer subset step, delta construction,
        cross-node reduce for its slice, then "broadcast" (a write into
        the shared model).  Returns the combined effective gradient.
        """
        params = dict(self.named)
        starts = {name: p.data.copy() for name, p in params.items()}

        combined_all: Dict[str, np.ndarray] = {}
        for part in self.partitions:
            if not part:
                continue
            # Local optimizer step restricted to this partition; the
            # optimizer code itself is untouched (the §4.3 property).
            for name in part:
                params[name].grad = np.asarray(local_grads[name])
            self.optimizer.step_subset(
                [self.param_index[n] for n in part], advance=False
            )
            deltas_local = {n: params[n].data - starts[n] for n in part}
            rank_deltas = [deltas_local] + [
                {n: np.asarray(rd[n]) for n in part} for rd in remote_deltas
            ]
            if len(rank_deltas) > 1:
                combined = self.reducer.reduce(rank_deltas)
            else:
                combined = deltas_local
            # "Broadcast": write the combined slice into the shared model.
            for n in part:
                np.copyto(params[n].data, starts[n] + combined[n])
                combined_all[n] = combined[n]
        self.optimizer.step_count += 1
        self.model.zero_grad()
        return combined_all
