"""Flat per-rank gradient buffers — the paper's fused-tensor layout (§4.4.3).

A :class:`GradientArena` holds one contiguous buffer per simulated rank,
preallocated once from the model's parameter layout.  Each layer's
gradient lives at a fixed ``(offset, length)`` slice of its rank's row,
exposed as a named zero-copy view shaped like the parameter.  The
training loop writes gradients straight into the views and the reducers
(:mod:`repro.core.reduction`) run flat in-place kernels over whole rows,
consulting the shared :class:`~repro.comm.fusion.FusedTensorLayout` for
per-layer boundaries — the same bookkeeping Horovod's fusion buffer
keeps, so Adasum's per-layer dot products need no dict plumbing.

Every flat code path is bit-exact with the historical dict-of-arrays
path (property-tested in ``tests/core/test_arena.py``): identical
per-layer fp64 accumulation, identical recursion order, identical
rounding points.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.comm.fusion import FusedTensorLayout, layout_of


class GradientArena:
    """``num_ranks`` contiguous flat gradient buffers with named views.

    Parameters
    ----------
    layout:
        Per-layer ``(offset, length)`` bookkeeping; identical across
        ranks so it is never communicated.
    num_ranks:
        Number of simulated ranks (buffer rows).
    dtype:
        Storage dtype of the gradients (reduction scalars still
        accumulate in float64 regardless).
    """

    def __init__(
        self,
        layout: FusedTensorLayout,
        num_ranks: int,
        dtype=np.float32,
    ):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.layout = layout
        self.num_ranks = num_ranks
        self.dtype = np.dtype(dtype)
        self.data = np.zeros((num_ranks, layout.total_size), dtype=self.dtype)
        # Named zero-copy views, one dict per rank.  A view is a shaped
        # window into the rank's row: writing through it fills the flat
        # buffer directly.
        self._views: List[Dict[str, np.ndarray]] = []
        for rank in range(num_ranks):
            row = self.data[rank]
            views = {
                name: row[lo:hi].reshape(shape)
                for name, (lo, hi), shape in zip(
                    layout.names, layout.slices, layout.shapes
                )
            }
            self._views.append(views)

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, num_ranks: int, dtype=np.float32) -> "GradientArena":
        """Preallocate from a model's parameter layout (declaration order)."""
        named = [(name, p.data) for name, p in model.named_parameters()]
        if not named:
            raise ValueError("model has no parameters")
        return cls(layout_of(named), num_ranks, dtype=dtype)

    @classmethod
    def from_grad_dicts(
        cls, grad_dicts: Sequence[Mapping[str, np.ndarray]], dtype=None
    ) -> "GradientArena":
        """Build an arena holding existing per-rank gradient dicts."""
        if not grad_dicts:
            raise ValueError("need at least one rank's gradients")
        first = grad_dicts[0]
        if dtype is None:
            dtype = next(iter(first.values())).dtype if first else np.float32
        arena = cls(layout_of(list(first.items())), len(grad_dicts), dtype=dtype)
        arena.load_dicts(grad_dicts)
        return arena

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layout.names)

    def row(self, rank: int) -> np.ndarray:
        """Rank ``rank``'s flat buffer (zero-copy)."""
        return self.data[rank]

    def views(self, rank: int) -> Dict[str, np.ndarray]:
        """Named, shaped zero-copy views into rank ``rank``'s row."""
        return self._views[rank]

    def view(self, rank: int, name: str) -> np.ndarray:
        return self._views[rank][name]

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        return iter(self._views)

    def zero_(self) -> None:
        self.data.fill(0)

    def zero_rank_(self, rank: int) -> None:
        self.data[rank].fill(0)

    # ------------------------------------------------------------------
    def load_dicts(self, grad_dicts: Sequence[Mapping[str, np.ndarray]]) -> None:
        """Copy per-rank gradient dicts into the arena rows."""
        if len(grad_dicts) != self.num_ranks:
            raise ValueError(
                f"expected {self.num_ranks} gradient dicts, got {len(grad_dicts)}"
            )
        for rank, gdict in enumerate(grad_dicts):
            views = self._views[rank]
            if set(gdict.keys()) != set(views.keys()):
                raise ValueError(f"rank {rank} layer names differ from the layout")
            for name, view in views.items():
                np.copyto(view, gdict[name])

    def write_row(self, rank: int, grads: Mapping[str, np.ndarray]) -> None:
        """Copy one rank's named gradients into its row."""
        views = self._views[rank]
        for name, view in views.items():
            np.copyto(view, grads[name])

    def unpack(self, flat: np.ndarray, copy: bool = True) -> Dict[str, np.ndarray]:
        """Split a flat combined buffer back into named, shaped tensors."""
        if flat.size != self.layout.total_size:
            raise ValueError(
                f"buffer size {flat.size} != layout {self.layout.total_size}"
            )
        out = {}
        for name, (lo, hi), shape in zip(
            self.layout.names, self.layout.slices, self.layout.shapes
        ):
            view = flat[lo:hi].reshape(shape)
            out[name] = view.copy() if copy else view
        return out

    def to_dicts(self) -> List[Dict[str, np.ndarray]]:
        """Materialize per-rank dicts (copies — for interop/debugging)."""
        return [
            {name: view.copy() for name, view in views.items()}
            for views in self._views
        ]

    def __repr__(self) -> str:
        return (
            f"GradientArena(ranks={self.num_ranks}, layers={self.num_layers}, "
            f"size={self.layout.total_size}, dtype={self.dtype})"
        )


def layer_id_index(layout: FusedTensorLayout) -> np.ndarray:
    """Flat index mapping each buffer element to its layer ordinal.

    Used to expand per-layer Adasum scale factors to per-element vectors
    with one ``np.take`` instead of a python loop over slices.
    """
    sizes = [hi - lo for lo, hi in layout.slices]
    return np.repeat(np.arange(len(sizes)), sizes)
