"""Flat per-rank gradient buffers — the paper's fused-tensor layout (§4.4.3).

A :class:`GradientArena` holds one contiguous buffer per simulated rank,
preallocated once from the model's parameter layout.  Each layer's
gradient lives at a fixed ``(offset, length)`` slice of its rank's row,
exposed as a named zero-copy view shaped like the parameter.  The
training loop writes gradients straight into the views and the reducers
(:mod:`repro.core.reduction`) run flat in-place kernels over whole rows,
consulting the shared :class:`~repro.comm.fusion.FusedTensorLayout` for
per-layer boundaries — the same bookkeeping Horovod's fusion buffer
keeps, so Adasum's per-layer dot products need no dict plumbing.

Every flat code path is bit-exact with the historical dict-of-arrays
path (property-tested in ``tests/core/test_arena.py``): identical
per-layer fp64 accumulation, identical recursion order, identical
rounding points.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm.fusion import FusedTensorLayout, layout_of


class GradientArena:
    """``num_ranks`` contiguous flat gradient buffers with named views.

    Parameters
    ----------
    layout:
        Per-layer ``(offset, length)`` bookkeeping; identical across
        ranks so it is never communicated.
    num_ranks:
        Number of simulated ranks (buffer rows).
    dtype:
        Storage dtype of the gradients (reduction scalars still
        accumulate in float64 regardless).
    """

    def __init__(
        self,
        layout: FusedTensorLayout,
        num_ranks: int,
        dtype=np.float32,
    ):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.layout = layout
        self.num_ranks = num_ranks
        self.dtype = np.dtype(dtype)
        self.data = self._allocate()
        self._build_views()

    def _allocate(self) -> np.ndarray:
        """Allocate the ``(num_ranks, total_size)`` backing buffer.

        Subclasses override to place the buffer elsewhere (e.g. a
        shared-memory segment); the base class uses the process heap.
        """
        return np.zeros((self.num_ranks, self.layout.total_size), dtype=self.dtype)

    def _build_views(self) -> None:
        # Named zero-copy views, one dict per rank.  A view is a shaped
        # window into the rank's row: writing through it fills the flat
        # buffer directly.
        layout = self.layout
        self._views: List[Dict[str, np.ndarray]] = []
        for rank in range(self.num_ranks):
            row = self.data[rank]
            views = {
                name: row[lo:hi].reshape(shape)
                for name, (lo, hi), shape in zip(
                    layout.names, layout.slices, layout.shapes
                )
            }
            self._views.append(views)

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model, num_ranks: int, dtype=np.float32) -> "GradientArena":
        """Preallocate from a model's parameter layout (declaration order)."""
        named = [(name, p.data) for name, p in model.named_parameters()]
        if not named:
            raise ValueError("model has no parameters")
        return cls(layout_of(named), num_ranks, dtype=dtype)

    @classmethod
    def from_grad_dicts(
        cls, grad_dicts: Sequence[Mapping[str, np.ndarray]], dtype=None
    ) -> "GradientArena":
        """Build an arena holding existing per-rank gradient dicts."""
        if not grad_dicts:
            raise ValueError("need at least one rank's gradients")
        first = grad_dicts[0]
        if dtype is None:
            dtype = next(iter(first.values())).dtype if first else np.float32
        arena = cls(layout_of(list(first.items())), len(grad_dicts), dtype=dtype)
        arena.load_dicts(grad_dicts)
        return arena

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.layout.names)

    def row(self, rank: int) -> np.ndarray:
        """Rank ``rank``'s flat buffer (zero-copy)."""
        return self.data[rank]

    def views(self, rank: int) -> Dict[str, np.ndarray]:
        """Named, shaped zero-copy views into rank ``rank``'s row."""
        return self._views[rank]

    def view(self, rank: int, name: str) -> np.ndarray:
        return self._views[rank][name]

    def __iter__(self) -> Iterator[Dict[str, np.ndarray]]:
        return iter(self._views)

    def zero_(self) -> None:
        self.data.fill(0)

    def zero_rank_(self, rank: int) -> None:
        self.data[rank].fill(0)

    # ------------------------------------------------------------------
    def load_dicts(self, grad_dicts: Sequence[Mapping[str, np.ndarray]]) -> None:
        """Copy per-rank gradient dicts into the arena rows."""
        if len(grad_dicts) != self.num_ranks:
            raise ValueError(
                f"expected {self.num_ranks} gradient dicts, got {len(grad_dicts)}"
            )
        for rank, gdict in enumerate(grad_dicts):
            views = self._views[rank]
            if set(gdict.keys()) != set(views.keys()):
                raise ValueError(f"rank {rank} layer names differ from the layout")
            for name, view in views.items():
                np.copyto(view, gdict[name])

    def write_row(self, rank: int, grads: Mapping[str, np.ndarray]) -> None:
        """Copy one rank's named gradients into its row."""
        views = self._views[rank]
        for name, view in views.items():
            np.copyto(view, grads[name])

    def unpack(self, flat: np.ndarray, copy: bool = True) -> Dict[str, np.ndarray]:
        """Split a flat combined buffer back into named, shaped tensors."""
        if flat.size != self.layout.total_size:
            raise ValueError(
                f"buffer size {flat.size} != layout {self.layout.total_size}"
            )
        out = {}
        for name, (lo, hi), shape in zip(
            self.layout.names, self.layout.slices, self.layout.shapes
        ):
            view = flat[lo:hi].reshape(shape)
            out[name] = view.copy() if copy else view
        return out

    def to_dicts(self) -> List[Dict[str, np.ndarray]]:
        """Materialize per-rank dicts (copies — for interop/debugging)."""
        return [
            {name: view.copy() for name, view in views.items()}
            for views in self._views
        ]

    def __repr__(self) -> str:
        return (
            f"GradientArena(ranks={self.num_ranks}, layers={self.num_layers}, "
            f"size={self.layout.total_size}, dtype={self.dtype})"
        )


#: Name prefix of every shared-memory segment this module creates; leak
#: checks glob ``/dev/shm`` for it (see :func:`leaked_shared_segments`).
SHM_PREFIX = "repro-arena"

# Live *owned* segments of this process, by name.  The atexit sweep
# unlinks whatever is left so an aborted run (CommError, SIGTERM-safe
# paths, a test that forgot to close) never strands a /dev/shm file.
_live_segments: Dict[str, "weakref.ReferenceType[SharedGradientArena]"] = {}
_live_lock = threading.Lock()
_shm_counter = 0


def _next_segment_name() -> str:
    global _shm_counter
    with _live_lock:
        _shm_counter += 1
        counter = _shm_counter
    return f"{SHM_PREFIX}-{os.getpid()}-{counter}-{os.urandom(3).hex()}"


def live_shared_segments() -> List[str]:
    """Names of shared segments this process owns and has not unlinked."""
    with _live_lock:
        return sorted(_live_segments)


def leaked_shared_segments() -> List[str]:
    """Arena segments present in ``/dev/shm`` (any process), by name.

    The leak-check primitive for tests: after a run (normal exit,
    aborted collective, elastic rebuild) this must return the same set
    as before it.  Returns ``[]`` on platforms without ``/dev/shm``.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(
        name for name in os.listdir(shm_dir) if name.startswith(SHM_PREFIX)
    )


@atexit.register
def _unlink_live_segments() -> None:
    """Last-resort sweep: unlink every still-owned segment at exit."""
    with _live_lock:
        arenas = [(name, ref()) for name, ref in _live_segments.items()]
        _live_segments.clear()
    for name, arena in arenas:
        if arena is not None:
            arena.unlink()
        else:  # owner was collected without unlink; remove the file
            try:
                from multiprocessing import shared_memory

                seg = shared_memory.SharedMemory(name=name)
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass


class SharedGradientArena(GradientArena):
    """A :class:`GradientArena` whose rows live in OS shared memory.

    Identical layout, views, and semantics — ``data`` is simply a NumPy
    array mapped over a named :class:`multiprocessing.shared_memory`
    segment, so worker *processes* attach to the same physical pages and
    ``compute_grads_into`` lands gradients where the parent's flat
    reduction reads them.  Zero gradient bytes ever cross a pipe.

    Lifecycle
    ---------
    The creating process **owns** the segment: it should call
    :meth:`unlink` (or use the arena as a context manager) when done.
    Ownership is tracked module-wide and an ``atexit`` sweep unlinks
    anything left over, so aborted runs cannot leak ``/dev/shm`` files.
    Attached (worker-side) arenas only ever :meth:`close` their mapping.

    Control region
    --------------
    The segment carries a small trailing control block: one ``uint64``
    *progress* word per rank, shared by parent and workers.  The
    worker-parallel tree reduce uses it as a per-level scoreboard — a
    worker bumps its word after each completed in-place pair combine,
    so when a rank dies mid-combine the parent can report exactly how
    many scheduled hops it finished (the structured ``rank_errors``
    path) without touching gradient rows.  The words live *after* the
    gradient rows, so row math is unchanged.

    Parameters
    ----------
    layout, num_ranks, dtype:
        As :class:`GradientArena`.
    name:
        Segment name.  ``None`` (with ``create=True``) generates a
        unique ``repro-arena-<pid>-...`` name; attaching requires the
        creator's name.
    create:
        ``True`` creates (and owns) the segment; ``False`` attaches to
        an existing one.
    """

    def __init__(
        self,
        layout: FusedTensorLayout,
        num_ranks: int,
        dtype=np.float32,
        name: Optional[str] = None,
        create: bool = True,
    ):
        self._shm = None
        self._owner = bool(create)
        self._requested_name = name
        self._closed = False
        super().__init__(layout, num_ranks, dtype=dtype)
        self.name = self._shm.name
        if self._owner:
            with _live_lock:
                _live_segments[self.name] = weakref.ref(self)

    def _allocate(self) -> np.ndarray:
        from multiprocessing import shared_memory

        row_bytes = self.num_ranks * self.layout.total_size * self.dtype.itemsize
        # 8-align the control block so the uint64 progress words map
        # cleanly whatever the row dtype is.
        ctrl_offset = (row_bytes + 7) & ~7
        nbytes = max(1, ctrl_offset + 8 * self.num_ranks)
        if self._owner:
            name = self._requested_name or _next_segment_name()
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=nbytes
            )
        else:
            if self._requested_name is None:
                raise ValueError("attaching requires the segment name")
            self._shm = self._attach_untracked(self._requested_name)
            if self._shm.size < nbytes:
                size = self._shm.size
                self._shm.close()
                raise ValueError(
                    f"segment {self._requested_name!r} holds {size} bytes, "
                    f"need {nbytes} for this layout"
                )
        arr = np.ndarray(
            (self.num_ranks, self.layout.total_size),
            dtype=self.dtype,
            buffer=self._shm.buf,
        )
        self.progress = np.ndarray(
            (self.num_ranks,), dtype=np.uint64,
            buffer=self._shm.buf, offset=ctrl_offset,
        )
        if self._owner:
            arr.fill(0)
            self.progress.fill(0)
        return arr

    @staticmethod
    def _attach_untracked(name: str):
        """Map an existing segment without resource-tracker registration.

        Only the owner may ever unlink a segment.  CPython < 3.13
        registers attached segments with the resource tracker too — and
        worker processes share the *parent's* tracker, so an attachee's
        registration (or a naive post-hoc ``unregister``) corrupts the
        owner's entry: either the segment is unlinked out from under
        other attachees at worker exit, or the owner's own unlink hits a
        noisy tracker ``KeyError``.  3.13+ exposes ``track=False``;
        earlier interpreters need registration suppressed for the
        duration of the constructor.
        """
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no ``track`` parameter
            pass
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _register_skipping_shm(rname, rtype):
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _register_skipping_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original

    # ------------------------------------------------------------------
    @classmethod
    def attach(
        cls,
        name: str,
        layout: FusedTensorLayout,
        num_ranks: int,
        dtype=np.float32,
    ) -> "SharedGradientArena":
        """Map an existing segment created by another process."""
        return cls(layout, num_ranks, dtype=dtype, name=name, create=False)

    @property
    def is_owner(self) -> bool:
        return self._owner

    def reset_progress(self) -> None:
        """Zero the per-rank progress scoreboard (parent, per reduce)."""
        self.progress.fill(0)

    def bump_progress(self, rank: int) -> None:
        """Record one completed scheduled hop for ``rank`` (worker-side)."""
        self.progress[rank] += np.uint64(1)

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives).

        Releases the NumPy views before closing the underlying mmap; a
        row reference still held elsewhere keeps the mapping alive (the
        ``BufferError`` is swallowed — :meth:`unlink` still removes the
        name, so nothing can leak).
        """
        if self._closed:
            return
        self._closed = True
        self._views = []
        self.data = None
        self.progress = None
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:  # a caller still holds a row view
                pass

    def unlink(self) -> None:
        """Remove the segment from the system (owner-side; idempotent).

        Safe to call however the run ended — normal exit, ``CommError``
        abort, elastic rebuild — and again afterwards.
        """
        self.close()
        with _live_lock:
            _live_segments.pop(getattr(self, "name", None), None)
        if self._shm is not None and self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._owner = False

    # Context manager: workers close, owners unlink.
    def __enter__(self) -> "SharedGradientArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if self._owner:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"SharedGradientArena(name={getattr(self, 'name', None)!r}, "
            f"ranks={self.num_ranks}, layers={self.num_layers}, "
            f"size={self.layout.total_size}, dtype={self.dtype}, "
            f"owner={self._owner})"
        )


def layer_id_index(layout: FusedTensorLayout) -> np.ndarray:
    """Flat index mapping each buffer element to its layer ordinal.

    Used to expand per-layer Adasum scale factors to per-element vectors
    with one ``np.take`` instead of a python loop over slices.
    """
    sizes = [hi - lo for lo, hi in layout.slices]
    return np.repeat(np.arange(len(sizes)), sizes)
