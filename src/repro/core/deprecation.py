"""Warn-once deprecation bookkeeping for the legacy reduction entry points.

The strategy-registry refactor (``repro.core.strategies``) collapsed the
organically-grown ``adasum_*``/reducer surface into one dispatcher; the
old public names survive as shims that forward to the registry and emit
a :class:`DeprecationWarning` exactly once per name per process, so
long-running sweeps are not flooded.

This module is dependency-free on purpose: the shims live in modules
the registry itself imports (``operator``, ``adasum_rvh``, ...), so the
warning helper must not import any of them back.
"""

from __future__ import annotations

import warnings
from typing import Set

_warned: Set[str] = set()


def warn_deprecated(name: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit a :class:`DeprecationWarning` for ``name``, once per process.

    ``replacement`` names the registry-backed API the caller should move
    to; repeated calls for the same ``name`` are silent (one warning per
    legacy entry point, however hot the call site).
    """
    if name in _warned:
        return
    _warned.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead "
        f"(see docs/architecture.md)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_deprecation_warnings() -> None:
    """Forget which names already warned (test helper)."""
    _warned.clear()
