"""Local steps + delta-based Adasum (paper Section 5.2, Table 2).

On slow interconnects, the TensorFlow Adasum distributed optimizer lets
each rank take ``k`` *local* optimizer steps between allreduces; at
communication time the effective gradient is the model's delta since
the previous allreduce, combined with Adasum.  This trades a little
algorithmic efficiency (Table 2: 68 → 84 epochs) for a large system
efficiency win (2.58 → 1.98 min/epoch on TCP).

:class:`LocalStepWorker` holds one rank's weight copy and optimizer;
:class:`LocalSGDCluster` coordinates a full simulated cluster of them
against a single physical model object (weights are swapped in and out
around each rank's compute).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.reduction import GradientReducer
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class LocalStepWorker:
    """One simulated rank: private weights + private optimizer state."""

    def __init__(self, rank: int, weights: Mapping[str, np.ndarray], optimizer: Optimizer):
        self.rank = rank
        self.weights: Dict[str, np.ndarray] = {n: w.copy() for n, w in weights.items()}
        self.optimizer = optimizer
        self.round_start: Dict[str, np.ndarray] = {n: w.copy() for n, w in weights.items()}

    def load_into(self, params: Mapping[str, "np.ndarray"]) -> None:
        """Copy this rank's weights into the shared model's parameters."""
        for name, p in params.items():
            np.copyto(p.data, self.weights[name])

    def store_from(self, params) -> None:
        """Copy the shared model's parameters back into this rank."""
        for name, p in params.items():
            np.copyto(self.weights[name], p.data)

    def delta(self) -> Dict[str, np.ndarray]:
        """Effective gradient: weight delta since the last allreduce."""
        return {n: self.weights[n] - self.round_start[n] for n in self.weights}

    def apply_combined(self, combined: Mapping[str, np.ndarray]) -> None:
        """Move to ``round_start + combined`` and begin a new round."""
        for n in self.weights:
            self.weights[n] = self.round_start[n] + combined[n]
            self.round_start[n] = self.weights[n].copy()


#: ``compute_grad_fn(model, batch) -> (loss_value, {layer: grad})``
ComputeGradFn = Callable[[Module, object], Tuple[float, Dict[str, np.ndarray]]]


class LocalSGDCluster:
    """Simulated cluster running ``local_steps`` steps between allreduces.

    Parameters
    ----------
    model:
        Shared physical model object; rank weights are swapped through it.
    optimizer_factory:
        Builds each rank's private optimizer over the model's parameters.
    num_ranks:
        World size.
    local_steps:
        Optimizer steps per rank between communications (paper's
        "local steps before communicating"; 1 = communicate every step).
    reducer:
        How the deltas are combined (Adasum in the paper; Sum/Average
        for baselines — with Sum the deltas are *averaged* to keep the
        update bounded, matching gradient-accumulation baselines).
    """

    def __init__(
        self,
        model: Module,
        optimizer_factory: Callable[[list], Optimizer],
        num_ranks: int,
        local_steps: int,
        reducer: GradientReducer,
    ):
        if local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        self.model = model
        self.params = dict(model.named_parameters())
        self.num_ranks = num_ranks
        self.local_steps = local_steps
        self.reducer = reducer
        weights = {n: p.data for n, p in self.params.items()}
        self.workers: List[LocalStepWorker] = [
            LocalStepWorker(r, weights, optimizer_factory(model.parameters()))
            for r in range(num_ranks)
        ]
        self._steps_in_round = 0
        self.communications = 0

    def step(
        self, rank_batches: Sequence[object], compute_grad_fn: ComputeGradFn
    ) -> Dict[str, float]:
        """One local step on every rank; communicate when the round ends.

        Returns ``{"loss": mean_rank_loss, "communicated": 0.0 or 1.0}``.
        """
        if len(rank_batches) != self.num_ranks:
            raise ValueError(f"expected {self.num_ranks} batches")
        losses = []
        for worker, batch in zip(self.workers, rank_batches):
            worker.load_into(self.params)
            self.model.zero_grad()
            loss, grads = compute_grad_fn(self.model, batch)
            losses.append(loss)
            for name, p in self.params.items():
                p.grad = grads[name]
            worker.optimizer.step()
            worker.store_from(self.params)
        self._steps_in_round += 1

        communicated = 0.0
        if self._steps_in_round >= self.local_steps:
            self._communicate()
            communicated = 1.0
        return {"loss": float(np.mean(losses)), "communicated": communicated}

    def _communicate(self) -> None:
        deltas = [w.delta() for w in self.workers]
        combined = self.reducer.reduce(deltas)
        if not self.reducer.post_optimizer:
            # Sum/Average baselines operate on deltas too; Sum of deltas
            # over-counts by N, so normalize to the average (the standard
            # gradient-accumulation baseline).
            if self.reducer.name == "sum":
                combined = {n: v / self.num_ranks for n, v in combined.items()}
        for w in self.workers:
            w.apply_combined(combined)
        self._steps_in_round = 0
        self.communications += 1
        # Leave the shared model holding the synchronized weights.
        self.workers[0].load_into(self.params)

    def sync_model(self) -> None:
        """Load rank 0's current weights into the shared model (for eval)."""
        self.workers[0].load_into(self.params)
