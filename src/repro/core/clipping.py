"""Gradient clipping for the fine-grained ``allreduce`` flow (§4.1).

The paper exposes the raw ``hvd.allreduce(op=hvd.Adasum)`` for "users
[who] want to perform additional operations such as gradient clipping
beyond those implemented in a DistributedOptimizer".  These helpers are
that workflow's standard pieces: clip per rank, then combine.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np


def global_grad_norm(grads: Mapping[str, np.ndarray]) -> float:
    """L2 norm of the concatenation of all gradients (float64)."""
    total = 0.0
    for g in grads.values():
        flat = np.asarray(g, dtype=np.float64).reshape(-1)
        total += float(flat @ flat)
    return float(np.sqrt(total))


def clip_grad_norm(
    grads: Mapping[str, np.ndarray], max_norm: float
) -> Dict[str, np.ndarray]:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Returns new arrays (inputs untouched); a no-op copy when already
    within the bound.  Mirrors ``torch.nn.utils.clip_grad_norm_``.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(grads)
    scale = min(1.0, max_norm / max(norm, 1e-12))
    return {n: np.asarray(g) * scale for n, g in grads.items()}


def clip_grad_value(
    grads: Mapping[str, np.ndarray], max_value: float
) -> Dict[str, np.ndarray]:
    """Elementwise clamp to ``[-max_value, max_value]``."""
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    return {n: np.clip(np.asarray(g), -max_value, max_value) for n, g in grads.items()}
