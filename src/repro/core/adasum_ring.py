"""The "ring" (linear) Adasum allreduce (paper §4.2.3).

Besides AdasumRVH, the paper implemented a linear application of the
pairwise operator optimized like a ring allreduce, and found it slower
than both AdasumRVH and NCCL on their fabric — kept here both as the
§4.2.3 ablation and as the alternative the paper suggests "could be
competitive for other architectures".

The algorithm: the accumulated combination travels once around the
ring — rank r receives the running combination of gradients 0..r-1,
combines its own gradient with it (all dot products are local since
both vectors are resident), and forwards the result.  A broadcast from
the last rank distributes the final vector.  Unlike the elementwise
ring allreduce this cannot be chunk-pipelined, because each pairwise
combination needs *whole-vector* dot products before any element can be
produced — the reason the paper's ring variant loses on bandwidth.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import broadcast
from repro.comm.fusion import FusedTensorLayout
from repro.comm.transport import Cluster, Comm
from repro.core.operator import adasum

_EPS = 1e-30


def _combine(
    acc: np.ndarray, g: np.ndarray,
    slices: Optional[Sequence[Tuple[int, int]]],
) -> np.ndarray:
    """Pairwise Adasum, per fused-layer slice when slices are given."""
    if slices is None:
        return adasum(acc, g)
    out = np.empty_like(acc)
    for lo, hi in slices:
        out[lo:hi] = adasum(acc[lo:hi], g[lo:hi])
    return out


def adasum_ring(
    comm: Comm,
    x: np.ndarray,
    layout: Optional[FusedTensorLayout] = None,
) -> np.ndarray:
    """Linear/ring Adasum allreduce; any rank count.

    Equivalent to :func:`repro.core.operator.adasum_linear` over the
    ranks' vectors (validated in tests), with ``2(P-1)`` full-vector
    messages of latency — latency- and bandwidth-suboptimal vs RVH,
    as §4.2.3 reports.
    """
    slices = tuple(layout.slices) if layout is not None else None
    return _ring_flat(comm, x, boundaries=None, _slices=slices)


def _ring_flat(
    comm: Comm,
    row: np.ndarray,
    boundaries: Optional[Sequence[int]] = None,
    _slices: Optional[Tuple[Tuple[int, int], ...]] = None,
) -> np.ndarray:
    """Ring Adasum over a flat arena row, no dict/layout packing.

    ``boundaries`` follows the ``layout.boundaries()`` convention
    (per-tensor offsets, ``len = #tensors + 1``) for per-layer pairwise
    combination, or ``None`` for whole-vector Adasum.  Bit-exact with
    :func:`adasum_ring` given the matching layout.  Reached through
    ``get_strategy("adasum", "ring").combine_comm``.
    """
    if _slices is not None:
        slices = _slices
    elif boundaries is not None:
        bs = list(boundaries)
        slices = tuple(zip(bs[:-1], bs[1:]))
    else:
        slices = None
    flat = np.ascontiguousarray(row).reshape(-1)
    p, r = comm.size, comm.rank
    if p == 1:
        return flat.copy()
    # Accumulation pass: rank 0 -> 1 -> ... -> p-1.
    if r == 0:
        comm.send(flat, 1)
        acc = None
    else:
        incoming = comm.recv(r - 1)
        comm.compute(2 * flat.nbytes, label="adasum-chain")  # dots + combination
        acc = _combine(incoming, flat, slices)
        if r < p - 1:
            comm.send(acc, r + 1)
    # Distribution pass: binomial broadcast from the last rank.
    result = broadcast(comm, acc if r == p - 1 else flat, root=p - 1)
    return result


def adasum_ring_flat(
    comm: Comm,
    row: np.ndarray,
    boundaries: Optional[Sequence[int]] = None,
    _slices: Optional[Tuple[Tuple[int, int], ...]] = None,
) -> np.ndarray:
    """Ring Adasum over a flat arena row.

    .. deprecated:: forward to
       ``get_strategy("adasum", "ring").combine_comm``.
    """
    from repro.core.deprecation import warn_deprecated

    warn_deprecated("adasum_ring_flat", 'get_strategy("adasum", "ring").combine_comm')
    if _slices is not None:
        return _ring_flat(comm, row, boundaries, _slices)
    from repro.core.strategies import get_strategy

    return get_strategy("adasum", "ring").combine_comm(comm, row, boundaries)


def allreduce_adasum_ring_cluster(grads, layout=None, network=None):
    """Driver mirroring :func:`repro.core.adasum_rvh.allreduce_adasum_cluster`."""
    size = len(grads)
    cluster = Cluster(size, network=network)
    results = cluster.run(adasum_ring, rank_args=[(g, layout) for g in grads])
    for r in range(1, size):
        if not np.allclose(results[r], results[0], rtol=1e-5, atol=1e-7):
            raise AssertionError(f"rank {r} disagrees after ring Adasum")
    return results[0], cluster.max_clock()


# Moved beside the other analytic network-cost models; re-exported here
# so existing ``from repro.core.adasum_ring import adasum_ring_cost``
# call sites keep working.
from repro.comm.netmodel import adasum_ring_cost  # noqa: E402,F401
