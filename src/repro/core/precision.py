"""Low-precision support (paper Section 4.4.1).

Two pieces, mirroring the Horovod implementation:

* :class:`Float16Codec` — fp16 storage for communicated gradients.  The
  Adasum dot products and norms still accumulate in float64 (see
  :func:`repro.core.operator.adasum_scale_factors`, which upcasts), the
  property the paper calls "crucial for the improved convergence".
* :class:`DynamicScaler` — dynamic loss/tensor scaling: keep a scale
  factor that grows while values stay finite and backs off on overflow
  (NaN/Inf), applied to the tensors Adasum introduces such as the
  effective gradient of Figure 3.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np


class Float16Codec:
    """Encode/decode gradient dicts to fp16 for communication."""

    dtype = np.float16

    def encode(self, grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Cast to fp16 (values beyond fp16 range become inf).

        The overflow-to-inf is intentional — it is the signal the
        dynamic scaler watches for — so the NumPy warning is suppressed.
        """
        with np.errstate(over="ignore"):
            return {n: g.astype(np.float16) for n, g in grads.items()}

    def decode(self, grads: Mapping[str, np.ndarray], dtype=np.float32) -> Dict[str, np.ndarray]:
        """Cast back to the compute dtype."""
        return {n: g.astype(dtype) for n, g in grads.items()}

    def nbytes(self, grads: Mapping[str, np.ndarray]) -> int:
        """Communication bytes at fp16."""
        return sum(g.size * 2 for g in grads.values())


class DynamicScaler:
    """Dynamic scaling à la mixed-precision training (Micikevicius 2017).

    ``scale()`` multiplies tensors up into fp16's dynamic range;
    ``unscale()`` divides back.  ``update(found_overflow)`` implements
    the standard policy: on overflow halve the scale and skip the step,
    otherwise double it every ``growth_interval`` clean steps.
    """

    def __init__(
        self,
        init_scale: float = 2.0 ** 10,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 100,
        max_scale: float = 2.0 ** 24,
    ):
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        self.scale_value = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.max_scale = max_scale
        self._clean_steps = 0
        self.overflow_count = 0

    def scale(self, grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        return {n: g * self.scale_value for n, g in grads.items()}

    def unscale(self, grads: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        inv = 1.0 / self.scale_value
        return {n: g * inv for n, g in grads.items()}

    @staticmethod
    def has_overflow(grads: Mapping[str, np.ndarray]) -> bool:
        """True if any value is NaN or Inf (fp16 range exceeded)."""
        return any(not np.isfinite(g).all() for g in grads.values())

    def update(self, found_overflow: bool) -> bool:
        """Adjust the scale; returns True if the step should be skipped."""
        if found_overflow:
            self.scale_value = max(self.scale_value * self.backoff_factor, 1.0)
            self._clean_steps = 0
            self.overflow_count += 1
            return True
        self._clean_steps += 1
        if self._clean_steps >= self.growth_interval:
            self.scale_value = min(self.scale_value * self.growth_factor, self.max_scale)
            self._clean_steps = 0
        return False

    def communicate_fp16(
        self, grads: Mapping[str, np.ndarray], codec: Float16Codec
    ) -> tuple:
        """Scale → fp16 encode → overflow check; returns (encoded, skip).

        The caller decodes + unscales only when ``skip`` is False.
        """
        scaled = self.scale(grads)
        encoded = codec.encode(scaled)
        overflow = self.has_overflow(encoded)
        skip = self.update(overflow)
        return encoded, skip
