"""Horovod-style ``DistributedOptimizer`` (paper Sections 4.1 and Figure 3).

Usage mirrors Horovod::

    opt = DistributedOptimizer(model, make_opt, num_ranks=8, op=ReduceOpType.ADASUM)
    ...
    opt.step(grad_dicts)          # one {layer: grad} dict per rank

Semantics
---------
* ``SUM`` / ``AVERAGE`` — synchronous SGD: gradients are reduced
  *before* the (single, shared) optimizer update.
* ``ADASUM`` — the paper's subtlety (Figure 3): each rank applies its
  *own* optimizer (with its own state) to its local gradient starting
  from the shared model, the resulting model *deltas* (effective
  gradients) are combined with Adasum, and the shared model moves by
  the combined delta.  "The logic of optimizers should only apply to
  the smaller minibatches per node."

For stateless-ish optimizers (plain SGD / Momentum-SGD) Adasum may also
be applied pre-optimizer like a drop-in allreduce replacement —
``adasum_pre_optimizer=True`` selects that mode, which is what
Horovod's ``hvd.DistributedOptimizer(op=hvd.Adasum)`` does for SGD and
what the ResNet-50 experiments use.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.comm.codec import build_pipeline, codecs_from_wire_dtype, parse_wire_codecs
from repro.core.precision import DynamicScaler, Float16Codec
from repro.core.strategies import GradientReducer, StrategyReducer
from repro.nn.module import Module
from repro.optim.optimizer import Optimizer


class ReduceOpType(enum.Enum):
    """Reduction op selector, mirroring ``hvd.Sum`` / ``hvd.Average`` /
    ``hvd.Adasum``."""

    SUM = "sum"
    AVERAGE = "average"
    ADASUM = "adasum"


def make_reducer(
    op,
    per_layer: bool = True,
    tree: bool = True,
    allow_non_pow2: bool = False,
    topology: str = None,
    gpus_per_node: int = None,
) -> GradientReducer:
    """Build the registry-backed reducer implementing ``op``.

    ``op`` is a :class:`ReduceOpType` or its string value.  ``topology``
    names a registered cell directly (``"tree"`` / ``"tree_any"`` /
    ``"linear"`` / ``"rvh"`` / ``"ring"`` / ``"hierarchical"``); when
    ``None`` it derives from the legacy ``(tree, allow_non_pow2)`` flag
    pair.  ``gpus_per_node`` parameterizes the hierarchical topology.
    """
    if topology is None:
        if tree:
            topology = "tree_any" if allow_non_pow2 else "tree"
        else:
            topology = "linear"
    return StrategyReducer(
        op=op, topology=topology, per_layer=per_layer, gpus_per_node=gpus_per_node
    )


def allreduce(
    grad_dicts: Sequence[Mapping[str, np.ndarray]],
    op: ReduceOpType = ReduceOpType.ADASUM,
    per_layer: bool = True,
) -> Dict[str, np.ndarray]:
    """Fine-grained ``hvd.allreduce`` equivalent over simulated ranks.

    Combines one gradient dict per rank with the requested op; exposed
    for users who need custom steps (e.g. gradient clipping) outside a
    :class:`DistributedOptimizer` (paper Section 4.1).
    """
    return make_reducer(op, per_layer=per_layer).reduce(grad_dicts)


class DistributedOptimizer:
    """Drives one logical model replicated over ``num_ranks`` simulated ranks.

    Parameters
    ----------
    model:
        The shared model replica (all ranks are kept identical, as the
        paper requires the user to guarantee).
    optimizer_factory:
        ``f(params) -> Optimizer``; called once per rank in ADASUM mode
        (per-rank optimizer state) and once total otherwise.
    num_ranks:
        Simulated data-parallel world size.
    op:
        Reduction operation.
    adasum_pre_optimizer:
        Apply Adasum to raw gradients before a single shared optimizer
        step (valid for SGD-family optimizers; Figure 3 mode otherwise).
    per_layer, tree:
        Adasum application granularity and recursion order.
    allow_non_pow2:
        Accept non-power-of-two rank counts in tree mode (elastic
        worlds); see :class:`~repro.core.reduction.AdasumReducer`.
    fp16:
        Communicate in fp16 with dynamic scaling (§4.4.1): each rank's
        contribution is scaled, cast to fp16 and checked for overflow
        before reduction; an overflow backs the scale off and skips the
        step, exactly as the Horovod implementation does.
    wire_codecs:
        Declarative wire-codec stack for the *flat* arena paths
        (``step_arena``, ``prepare_wire_arena`` and the overlap
        scheduler), e.g. ``("fp16",)`` or ``("fp16", "int8",
        "topk:0.01")`` — see :mod:`repro.comm.codec`.  Each step the
        participating rows are round-tripped through the stack in place
        at the wire boundary, so reduction arithmetic (Adasum dot
        products included) stays in full precision over exactly the
        values a receiver would decode.  Bounded-error codecs carry
        per-row error-feedback residuals; an fp16 stage keeps the
        dynamic scaler's one-verdict-per-step behaviour (§4.4.1).
    wire_dtype:
        Deprecated alias: ``"fp16"`` means ``wire_codecs=("fp16",)``
        (warn-once); ``"fp32"`` means no codecs.
    """

    def __init__(
        self,
        model: Module,
        optimizer_factory: Callable[[list], Optimizer],
        num_ranks: int,
        op: ReduceOpType = ReduceOpType.ADASUM,
        adasum_pre_optimizer: bool = False,
        per_layer: bool = True,
        tree: bool = True,
        fp16: bool = False,
        allow_non_pow2: bool = False,
        wire_dtype: str = "fp32",
        topology: str = None,
        gpus_per_node: int = None,
        wire_codecs=None,
    ):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if isinstance(op, str):
            op = ReduceOpType(op.lower())
        self.model = model
        self.num_ranks = num_ranks
        self.op = op
        self.per_layer = per_layer
        self.reducer = make_reducer(
            op,
            per_layer=per_layer,
            tree=tree,
            allow_non_pow2=allow_non_pow2,
            topology=topology,
            gpus_per_node=gpus_per_node,
        )
        self.topology = self.reducer.topology
        self.gpus_per_node = getattr(self.reducer, "gpus_per_node", 1)
        self.tree = self.reducer.tree
        self.allow_non_pow2 = self.reducer.allow_non_pow2
        self.adasum_pre_optimizer = adasum_pre_optimizer
        self._param_names = [name for name, _ in model.named_parameters()]
        self._params = dict(model.named_parameters())
        specs = parse_wire_codecs(wire_codecs)
        legacy = codecs_from_wire_dtype(wire_dtype)  # validates the string
        if legacy:
            from repro.core.deprecation import warn_deprecated

            warn_deprecated('wire_dtype="fp16"', 'wire_codecs=("fp16",)')
            if not specs:
                specs = legacy
            elif "fp16" not in specs:
                raise ValueError(
                    'wire_dtype="fp16" conflicts with wire_codecs='
                    f"{specs!r}; declare the stack once via wire_codecs"
                )
        if fp16 and specs:
            raise ValueError(
                "fp16=True (legacy dict codec) cannot combine with "
                "wire_codecs; declare the stack as wire_codecs=('fp16', ...)"
            )
        self.fp16 = fp16
        self.wire_dtype = wire_dtype
        #: Normalized codec stack active on the flat arena paths.
        self.wire_codecs = specs
        #: An fp16 wire stage (dynamic scaler) is active somewhere.
        self.wire_fp16 = fp16 or "fp16" in specs
        self._codec = Float16Codec() if self.wire_fp16 else None
        self._scaler = DynamicScaler() if self.wire_fp16 else None
        # The pipeline drives the flat wire boundary.  fp16=True keeps
        # the dict codec for step()/step_arena() but the overlap
        # scheduler still encodes flat rows, so it gets a pipeline too
        # (sharing self._scaler either way: one state trajectory).
        self.wire_pipeline = build_pipeline(
            specs if specs else (("fp16",) if fp16 else ()), scaler=self._scaler
        )
        #: Modeled encoded wire bytes (all participating rows) for the
        #: last prepared step, and accumulated over the run.
        self.last_wire_bytes = 0
        self.wire_bytes_total = 0
        self.skipped_steps = 0
        self.post_optimizer_mode = op is ReduceOpType.ADASUM and not adasum_pre_optimizer
        if self.post_optimizer_mode:
            self.rank_optimizers: List[Optimizer] = [
                optimizer_factory(model.parameters()) for _ in range(num_ranks)
            ]
            self.optimizer: Optional[Optimizer] = None
        else:
            self.optimizer = optimizer_factory(model.parameters())
            self.rank_optimizers = []

    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        model: Module,
        optimizer_factory: Callable[[list], Optimizer],
        config,
        num_ranks: int = None,
        allow_non_pow2: bool = None,
    ) -> "DistributedOptimizer":
        """Build from a :class:`repro.core.config.RunConfig`.

        ``config`` is duck-typed (any object with the ``RunConfig``
        reduction fields works).  ``num_ranks`` overrides
        ``config.num_ranks``; ``allow_non_pow2=True`` widens a ``tree``
        topology to ``tree_any`` (the elastic runtime's geometry, where
        the world can shrink to any size mid-run).
        """
        topology = config.topology
        if allow_non_pow2 and topology == "tree":
            topology = "tree_any"
        wire_codecs = getattr(config, "wire_codecs", None)
        if wire_codecs is None:
            # Duck-typed legacy config objects: fold the old field.
            wire_codecs = codecs_from_wire_dtype(getattr(config, "wire_dtype", "fp32"))
        return cls(
            model,
            optimizer_factory,
            num_ranks=config.num_ranks if num_ranks is None else num_ranks,
            op=ReduceOpType(config.op),
            adasum_pre_optimizer=config.adasum_pre_optimizer,
            per_layer=config.per_layer,
            fp16=config.fp16,
            wire_codecs=wire_codecs,
            topology=topology,
            gpus_per_node=getattr(config, "gpus_per_node", None),
        )

    # ------------------------------------------------------------------
    @property
    def lr(self) -> float:
        opt = self.optimizer or self.rank_optimizers[0]
        return opt.lr

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def step(self, grad_dicts: Sequence[Mapping[str, np.ndarray]]) -> None:
        """Apply one distributed update from per-rank gradient dicts."""
        if len(grad_dicts) != self.num_ranks:
            raise ValueError(
                f"expected {self.num_ranks} gradient dicts, got {len(grad_dicts)}"
            )
        if self.post_optimizer_mode:
            self._step_post_optimizer(grad_dicts)
        else:
            self._step_pre_optimizer(grad_dicts)

    def step_arena(self, arena, reduce_fn=None) -> None:
        """Apply one distributed update from a filled :class:`GradientArena`.

        The flat-buffer equivalent of :meth:`step`: per-rank gradients
        live in the arena rows and the reduction runs the reducer's flat
        kernels over them — bit-identical results, no per-layer dict
        temporaries.  The fp16 wire format still flows through the dict
        codec, so that mode falls back to per-layer views.

        ``reduce_fn(arena) -> flat buffer`` swaps out *who reduces* the
        prepared rows (the process backend's worker-parallel tree reduce
        plugs in here) while the wire rewrite and apply halves stay
        identical — the skip/fp16/post-optimizer bookkeeping is shared
        whatever runs phase 2.  The fp16 dict fallback would silently
        bypass a custom reducer, so it is rejected.
        """
        if arena.num_ranks != self.num_ranks:
            raise ValueError(
                f"expected a {self.num_ranks}-rank arena, got {arena.num_ranks}"
            )
        if self.fp16:
            if reduce_fn is not None:
                raise ValueError(
                    "fp16=True falls back to the dict codec path, which "
                    "cannot honor a custom reduce_fn; use wire_codecs=('fp16',)"
                )
            # Views are zero-copy; the codec allocates fresh encoded
            # tensors anyway, so nothing is lost falling back here.
            self.step([arena.views(r) for r in range(self.num_ranks)])
            return
        ctx = self.prepare_wire_arena(arena)
        if ctx["skip"]:
            return
        if reduce_fn is None:
            combined = self.reducer.reduce_arena(arena)
        else:
            combined = reduce_fn(arena)
        self.apply_reduced_flat(combined, arena, ctx)

    def _communicate(self, dicts):
        """Apply the fp16 wire format to the tensors about to be reduced.

        Returns the decoded dicts, or ``None`` when an overflow forces
        the step to be skipped (the scale has already been backed off).
        """
        if not self.fp16:
            return dicts
        scale_used = self._scaler.scale_value
        encoded = [self._codec.encode(self._scaler.scale(d)) for d in dicts]
        overflow = any(DynamicScaler.has_overflow(e) for e in encoded)
        skip = self._scaler.update(overflow)
        if skip:
            self.skipped_steps += 1
            return None
        inv = 1.0 / scale_used
        return [
            {n: g.astype(np.float32) * inv for n, g in e.items()} for e in encoded
        ]

    # ------------------------------------------------------------------
    # Split-step API: the elastic runtime separates the local half of a
    # distributed step (delta rewrite, fp16 wire encode) from the apply
    # half, because the reduction in between runs as a collective on the
    # simulated cluster — and may fail, shrink the world, and be retried
    # over a different participant set.
    # ------------------------------------------------------------------
    def prepare_wire_arena(self, arena, ranks: Optional[Sequence[int]] = None) -> Dict:
        """Rewrite arena rows into wire tensors; returns the step context.

        For post-optimizer Adasum (Figure 3) each participating rank's
        row is rewritten in place from its local gradient to its
        post-optimizer model delta (the model is restored to the shared
        starting point afterwards).  With a codec stack the rows then
        round-trip through the pipeline in place; an fp16 overflow
        backs the scale off and marks the step skipped (one scaler
        verdict per step).

        ``ranks`` selects which arena rows participate (default: all) —
        the hook the straggler drop policy uses.  The returned context
        carries ``skip``, the post-optimizer starting parameters, and —
        when a stack is active — ``wire_scale`` (fp16 stage present),
        ``wire_format`` (transport-level re-encode of the now
        grid-resident rows) and ``wire_bytes`` (modeled encoded bytes).
        """
        if ranks is None:
            ranks = list(range(arena.num_ranks))
        else:
            ranks = list(ranks)
        ctx: Dict = {"ranks": ranks, "starts": None, "skip": False}
        if self.post_optimizer_mode:
            ctx["starts"] = self._rewrite_rows_to_deltas(arena, ranks)
        pipe = self.wire_pipeline
        if pipe is not None:
            pipe.bind(
                arena.num_ranks, arena.layout.total_size, arena.layout.boundaries()
            )
            scale_used = (
                self._scaler.scale_value if self._scaler is not None else None
            )
            pipe.begin_step()
            overflow = pipe.encode_block(arena.data, ranks)
            if pipe.end_step(overflow):
                self.skipped_steps += 1
                ctx["skip"] = True
                self.model.zero_grad()
            else:
                if scale_used is not None:
                    # Rows are now on the fp16 grid at this
                    # (power-of-two) scale; transports can compress
                    # them losslessly.
                    ctx["wire_scale"] = scale_used
                ctx["wire_format"] = pipe.leaf_format()
                nbytes = pipe.wire_nbytes() * len(ranks)
                ctx["wire_bytes"] = nbytes
                self.last_wire_bytes = nbytes
                self.wire_bytes_total += nbytes
        else:
            nbytes = arena.layout.total_size * arena.dtype.itemsize * len(ranks)
            self.last_wire_bytes = nbytes
            self.wire_bytes_total += nbytes
        return ctx

    def wire_row_nbytes(self, arena) -> int:
        """Modeled per-row wire bytes for one step over ``arena``
        (encoded size when a codec stack is active, raw fp32 otherwise).
        """
        if self.wire_pipeline is None:
            return arena.layout.total_size * arena.dtype.itemsize
        self.wire_pipeline.bind(
            arena.num_ranks, arena.layout.total_size, arena.layout.boundaries()
        )
        return self.wire_pipeline.wire_nbytes()

    def apply_reduced_flat(self, combined: np.ndarray, arena, ctx: Optional[Dict] = None) -> None:
        """Apply a reduced flat buffer produced from prepared arena rows."""
        if ctx is not None and ctx.get("skip"):
            return
        if self.post_optimizer_mode:
            starts = ctx["starts"] if ctx is not None else None
            if starts is None:
                raise ValueError(
                    "post-optimizer apply needs the context returned by "
                    "prepare_wire_arena (starting parameter values)"
                )
            delta = arena.unpack(combined, copy=False)
            for name, p in self._params.items():
                np.copyto(p.data, starts[name] + delta[name])
        else:
            views = arena.unpack(combined, copy=False)
            for name in self._param_names:
                self._params[name].grad = views[name]
            assert self.optimizer is not None
            self.optimizer.step()
        self.model.zero_grad()

    def _rewrite_rows_to_deltas(self, arena, ranks: Sequence[int]) -> Dict[str, np.ndarray]:
        """Figure 3 local half: turn each rank's gradient row into its
        post-optimizer model delta, in place; returns the start params."""
        starts = {name: p.data.copy() for name, p in self._params.items()}
        for rank in ranks:
            views = arena.views(rank)
            for name, p in self._params.items():
                np.copyto(p.data, starts[name])
                p.grad = views[name]
            self.rank_optimizers[rank].step()
            # The local gradient is consumed; its row becomes the delta.
            for name, p in self._params.items():
                np.subtract(p.data, starts[name], out=views[name])
        # Leave the model at the shared starting point until apply.
        for name, p in self._params.items():
            np.copyto(p.data, starts[name])
        self.model.zero_grad()
        return starts

    # ------------------------------------------------------------------
    def _step_pre_optimizer(self, grad_dicts) -> None:
        """allreduce(gradients) then one shared optimizer update."""
        grad_dicts = self._communicate(grad_dicts)
        if grad_dicts is None:
            self.model.zero_grad()
            return
        combined = self.reducer.reduce(grad_dicts)
        for name in self._param_names:
            self._params[name].grad = combined[name]
        assert self.optimizer is not None
        self.optimizer.step()
        self.model.zero_grad()

    def _step_post_optimizer(self, grad_dicts) -> None:
        """Figure 3: per-rank optimizer steps, Adasum on model deltas."""
        starts = {name: p.data.copy() for name, p in self._params.items()}
        delta_dicts: List[Dict[str, np.ndarray]] = []
        for rank, gdict in enumerate(grad_dicts):
            # Restore the shared starting point, apply this rank's
            # optimizer to its local gradient, record the delta.
            for name, p in self._params.items():
                np.copyto(p.data, starts[name])
                p.grad = gdict[name]
            self.rank_optimizers[rank].step()
            delta_dicts.append(
                {name: p.data - starts[name] for name, p in self._params.items()}
            )
        # The effective gradients are the tensors that go on the wire
        # (Figure 3); dynamic scaling applies to them (§4.4.1).
        delta_dicts = self._communicate(delta_dicts)
        if delta_dicts is None:
            for name, p in self._params.items():
                np.copyto(p.data, starts[name])  # skipped step
            self.model.zero_grad()
            return
        combined = self.reducer.reduce(delta_dicts)
        for name, p in self._params.items():
            # current.data.add_(effective_gradient) from Figure 3.
            np.copyto(p.data, starts[name] + combined[name])
        self.model.zero_grad()
