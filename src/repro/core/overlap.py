"""Backprop/communication overlap over bucketed arena slices (§4.4.2-4.4.3).

Horovod hides allreduce latency behind backprop: gradients complete in
reverse layer order, get packed into fusion buckets, and each bucket's
reduction launches on a background thread the moment its last tensor is
ready.  :class:`OverlapScheduler` reproduces that pipeline over the
simulated ranks' :class:`~repro.core.arena.GradientArena`:

* a :class:`~repro.comm.bucketing.BucketPlan` slices the fused layout
  into size-capped, tensor-aligned buckets in reverse layer order;
* the compute side (serial autograd with grad-ready hooks, or a fused
  engine such as
  :class:`~repro.models.fused_bert.FusedBertRankCompute`) marks
  parameters ready as their gradients land in the arena;
* a single comm worker thread reduces complete buckets with the
  reducer's flat kernels while backprop continues on the main thread.

Bit-exactness with the phased ``DistributedOptimizer.step_arena`` path
is structural, not approximate:

* buckets align to whole tensors, so per-layer Adasum sees exactly the
  same per-layer slices either way (whole-model Adasum degenerates to a
  single bucket);
* Figure-3 post-optimizer mode rewrites each bucket's rows from local
  gradients to post-optimizer deltas with a
  :class:`FlatOptimizerMirror` — a flat, rank-vectorized replay of the
  per-rank optimizers' exact update arithmetic (same expressions, same
  dtypes, same rounding points), so the wire tensors are bit-identical
  to ``_rewrite_rows_to_deltas``;
* the wire codec stack (:mod:`repro.comm.codec`) applies per bucket:
  an fp16 stage runs with the step's scale fixed up front and the
  dynamic scaler sees one aggregated overflow verdict per step — the
  same state trajectory as the phased encode — while non-elementwise
  stages (int8, top-k) compute their statistics per *layer block*, and
  buckets are tensor-aligned, so the encoded values are identical to
  the phased path whatever the bucket cap.

On this simulator compute and communication share one process, so the
speedup comes from the cheaper fused compute engines and the flat
mirror rewrite rather than from true concurrency; the scheduling is
nonetheless faithful (and measurable in the overlap Chrome trace).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.comm.bucketing import Bucket, BucketPlan
from repro.comm.tracing import CommTracer
from repro.core.arena import GradientArena
from repro.core.distributed_optimizer import DistributedOptimizer
from repro.optim.adam import Adam
from repro.optim.sgd import SGD


#: Registry of fused rank-compute engines: ``(predicate, factory)``
#: pairs tried in order by :func:`build_fused_engine`.
_FUSED_ENGINES: List = []


def register_fused_engine(
    predicate: Callable[[object], bool], factory: Callable[[object, int], object]
) -> None:
    """Register a fused compute engine for :func:`build_fused_engine`.

    ``predicate(model)`` says whether ``factory(model, num_ranks)`` can
    build an engine with a ``step(x, y, rank_views, ready_cb)`` method
    returning per-rank losses (see
    :class:`~repro.models.fused_bert.FusedBertRankCompute`).
    """
    _FUSED_ENGINES.append((predicate, factory))


def build_fused_engine(model, num_ranks: int):
    """Best registered fused engine for ``model``, or ``None``.

    A factory raising ``ValueError``/``TypeError`` (unsupported config,
    e.g. active dropout) just disqualifies that engine.
    """
    _register_builtin_engines()
    for predicate, factory in _FUSED_ENGINES:
        try:
            if predicate(model):
                return factory(model, num_ranks)
        except (ValueError, TypeError):
            continue
    return None


_builtins_registered = False


def _register_builtin_engines() -> None:
    global _builtins_registered
    if _builtins_registered:
        return
    _builtins_registered = True
    # Lazy: models -> core is the wrong import direction at module load.
    from repro.models.fused_bert import FusedBertRankCompute
    from repro.models.transformer import MiniBERT

    register_fused_engine(
        lambda m: isinstance(m, MiniBERT), FusedBertRankCompute
    )


class FlatOptimizerMirror:
    """Rank-vectorized flat replay of the per-rank optimizers (Figure 3).

    ``_rewrite_rows_to_deltas`` walks parameters per rank through the
    real :class:`~repro.optim.optimizer.Optimizer` objects — correct,
    but serialized after backward and dominated by Python dispatch.
    The mirror keeps the per-rank optimizer state as ``(ranks, size)``
    flat arrays and rewrites any column range ``[lo, hi)`` of the arena
    from gradients to post-optimizer deltas in a handful of vectorized
    ops, which is what lets a bucket's rewrite run on the comm worker
    while backprop continues.

    Every expression matches the scalar optimizers' update arithmetic
    exactly (same association order, same dtypes, same
    ``.astype(float32)`` rounding points, same start/delta
    double-rounding), and all ops are elementwise, so vectorizing
    across ranks cannot change bits — property-tested against the
    phased path in ``tests/core/test_overlap.py``.

    The mirror owns its own step/state bookkeeping; the real
    ``rank_optimizers`` are left untouched.  It therefore must be
    driven for *every* step of a run (the scheduler guarantees this) —
    mixing phased and mirrored steps mid-run would fork the optimizer
    state.
    """

    def __init__(self, dist_opt: DistributedOptimizer, arena: GradientArena):
        opt = dist_opt.rank_optimizers[0]
        self._opt = opt
        self._kind = "adam" if type(opt) is Adam else "sgd"
        self._arena = arena
        self._ranks = arena.num_ranks
        total = arena.layout.total_size
        self.starts = np.empty(total, dtype=arena.dtype)
        self.start_views: Dict[str, np.ndarray] = {
            name: self.starts[lo:hi].reshape(shape)
            for name, (lo, hi), shape in zip(
                arena.layout.names, arena.layout.slices, arena.layout.shapes
            )
        }
        self._params = dist_opt._params
        self._steps = 0
        self._lr = 0.0
        shape = (self._ranks, total)
        if self._kind == "adam":
            self._m = np.zeros(shape, dtype=np.float32)
            self._v = np.zeros(shape, dtype=np.float32)
        elif opt.momentum:
            self._buf = np.zeros(shape, dtype=np.float32)

    # ------------------------------------------------------------------
    @staticmethod
    def build(
        dist_opt: DistributedOptimizer, arena: GradientArena
    ) -> Optional["FlatOptimizerMirror"]:
        """Mirror for ``dist_opt``'s rank optimizers, or ``None``.

        Supported: fresh (never-stepped) plain :class:`Adam` and
        :class:`SGD` instances.  Subclasses (e.g. AdamW) are excluded by
        exact type check — they override the update rule.
        """
        opts = dist_opt.rank_optimizers
        if not opts:
            return None
        if type(opts[0]) not in (Adam, SGD):
            return None
        if any(o.step_count != 0 or o.state for o in opts):
            return None
        return FlatOptimizerMirror(dist_opt, arena)

    # ------------------------------------------------------------------
    def begin_step(self) -> None:
        """Snapshot shared starting params; fix this step's lr and t."""
        for name, p in self._params.items():
            np.copyto(self.start_views[name], p.data)
        self._lr = self._opt.lr_schedule(self._steps)
        self._steps += 1

    def rewrite(self, lo: int, hi: int) -> None:
        """In place: arena columns ``[lo, hi)`` gradient rows -> delta rows."""
        rows = self._arena.data[:, lo:hi]
        start = self.starts[lo:hi]
        opt = self._opt
        g = rows
        if opt.weight_decay:
            g = g + opt.weight_decay * start
        if self._kind == "adam":
            m = opt.beta1 * self._m[:, lo:hi] + (1 - opt.beta1) * g
            v = opt.beta2 * self._v[:, lo:hi] + (1 - opt.beta2) * g * g
            self._m[:, lo:hi] = m
            self._v[:, lo:hi] = v
            t = self._steps
            mhat = m / (1 - opt.beta1 ** t)
            vhat = v / (1 - opt.beta2 ** t)
            direction = mhat / (np.sqrt(vhat) + opt.eps)
        elif opt.momentum:
            if self._steps == 1:
                buf = g.astype(np.float32).copy()
            else:
                buf = opt.momentum * self._buf[:, lo:hi] + g
            self._buf[:, lo:hi] = buf
            direction = g + opt.momentum * buf if opt.nesterov else buf
        else:
            direction = g
        # p.data -= (lr * d).astype(f32); delta = p.data - start: keep
        # the serial path's double rounding.
        new = start - (self._lr * direction).astype(rows.dtype)
        np.subtract(new, start, out=rows)


class OverlapScheduler:
    """Bucketed overlap of gradient reduction with backprop.

    Parameters
    ----------
    dist_opt:
        The distributed optimizer whose update rule the scheduler
        replays (results are bit-identical to its ``step_arena``).
    arena:
        Per-rank flat gradient buffers (all ranks participate).
    bucket_cap_mb:
        Fusion bucket size cap.  Whole-model (``per_layer=False``)
        Adasum needs whole-row dot products, so it always collapses to
        a single bucket.
    tracer:
        Optional :class:`~repro.comm.tracing.CommTracer` recording the
        *wall-clock* overlap timeline: compute on lane 0, the comm
        worker's per-bucket reductions on lane 1 (offsets in seconds
        from each step's start).  Keep it separate from a simulated-
        clock tracer — the timelines don't share a clock.

    Use :meth:`step` with a compute callback that fills the arena and
    marks parameters ready::

        sched = OverlapScheduler(dist_opt, arena)
        losses = sched.step(compute)   # compute(mark_ready) -> losses

    Unsupported configurations (post-optimizer mode with an optimizer
    the :class:`FlatOptimizerMirror` cannot replay) degrade gracefully:
    compute runs, then the phased ``step_arena`` — correct, just
    without overlap.  ``sched.overlapped`` says which mode is active.
    """

    COMM_LANE_OFFSET = 1  # tracer lane: 0 = compute, 1 = comm worker

    def __init__(
        self,
        dist_opt: DistributedOptimizer,
        arena: GradientArena,
        bucket_cap_mb: float = 1.0,
        tracer: Optional[CommTracer] = None,
    ):
        if arena.num_ranks != dist_opt.num_ranks:
            raise ValueError(
                f"arena has {arena.num_ranks} ranks, optimizer {dist_opt.num_ranks}"
            )
        self.dist_opt = dist_opt
        self.arena = arena
        self.tracer = tracer
        cap_bytes = max(1, int(bucket_cap_mb * (1 << 20)))
        reducer = dist_opt.reducer
        if getattr(reducer, "name", "") == "adasum" and not getattr(
            reducer, "per_layer", True
        ):
            # Whole-model dots span the full row: single bucket.
            cap_bytes = max(cap_bytes, arena.layout.total_size * arena.dtype.itemsize)
        self.plan = BucketPlan.for_layout(
            arena.layout, cap_bytes, itemsize=arena.dtype.itemsize
        )
        self.mirror: Optional[FlatOptimizerMirror] = (
            FlatOptimizerMirror.build(dist_opt, arena)
            if dist_opt.post_optimizer_mode
            else None
        )
        #: False -> degenerate mode (compute, then phased step_arena).
        self.overlapped = (not dist_opt.post_optimizer_mode) or self.mirror is not None
        self._name_to_bucket: Dict[str, int] = {
            n: b.index for b in self.plan.buckets for n in b.names
        }
        self._combined = np.empty(arena.layout.total_size, dtype=arena.dtype)
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix="comm")
        self._pending: List[set] = []
        self._launched: List[bool] = []
        self._futures: List[Future] = []
        self._overflow = False
        self._scale = 1.0
        self._wire_bytes = 0
        self._t_base = 0.0

    # ------------------------------------------------------------------
    def step(self, compute_fn: Callable[[Callable[[str], None]], List[float]]) -> List[float]:
        """One distributed step with bucket reductions overlapping compute.

        ``compute_fn(mark_ready)`` must fill every arena row and call
        ``mark_ready(name)`` once per parameter when all ranks'
        gradients for it are final; it returns the per-rank losses.
        """
        if not self.overlapped:
            losses = compute_fn(lambda name: None)
            self.dist_opt.step_arena(self.arena)
            return losses
        dist_opt = self.dist_opt
        with self._lock:
            self._pending = [set(b.names) for b in self.plan.buckets]
            self._launched = [False] * self.plan.num_buckets
            self._futures = []
            self._overflow = False
            self._wire_bytes = 0
            self._t_base = perf_counter()
        if self.mirror is not None:
            self.mirror.begin_step()
        pipe = dist_opt.wire_pipeline
        if pipe is not None:
            pipe.bind(
                self.arena.num_ranks,
                self.arena.layout.total_size,
                self.arena.layout.boundaries(),
            )
            pipe.begin_step()  # fixes the fp16 scale for every bucket
        if dist_opt.wire_fp16:
            self._scale = dist_opt._scaler.scale_value

        losses = compute_fn(self.mark_ready)
        t_compute = perf_counter() - self._t_base

        with self._lock:
            futures = self._flush_locked()
        for fut in futures:
            fut.result()  # propagate comm-worker exceptions

        skip = False
        if pipe is not None:
            # One aggregated overflow verdict per step, as in the
            # phased encode; a skip also rolls back EF residuals.
            skip = pipe.end_step(self._overflow)
            if skip:
                dist_opt.skipped_steps += 1
            else:
                dist_opt.last_wire_bytes = self._wire_bytes
                dist_opt.wire_bytes_total += self._wire_bytes
        else:
            dist_opt.last_wire_bytes = self._wire_bytes
            dist_opt.wire_bytes_total += self._wire_bytes
        if self.tracer is not None:
            # One span covers all ranks' fused forward/backward.
            self.tracer.record(0, "compute", 0.0, t_compute, label="ranks-fwd-bwd")
        if skip:
            dist_opt.model.zero_grad()
            return losses
        ctx = {
            "ranks": list(range(self.arena.num_ranks)),
            "starts": self.mirror.start_views if self.mirror is not None else None,
            "skip": False,
        }
        dist_opt.apply_reduced_flat(self._combined, self.arena, ctx)
        return losses

    def mark_ready(self, name: str) -> None:
        """Record that all ranks' gradients for ``name`` are in the arena."""
        idx = self._name_to_bucket[name]
        with self._lock:
            pend = self._pending[idx]
            pend.discard(name)
            if not pend and not self._launched[idx]:
                self._launch_locked(idx)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    def _flush_locked(self) -> List[Future]:
        """Launch every unfired bucket (compute is done); return futures."""
        for i in range(self.plan.num_buckets):
            if not self._launched[i]:
                self._launch_locked(i)
        return list(self._futures)

    def _launch_locked(self, idx: int) -> None:
        self._launched[idx] = True
        self._futures.append(
            self._pool.submit(self._reduce_bucket, self.plan.buckets[idx])
        )

    def _reduce_bucket(self, bucket: Bucket) -> None:
        """Comm-worker half: rewrite, wire-encode and reduce one bucket."""
        t0 = perf_counter() - self._t_base
        dist_opt = self.dist_opt
        lo, hi = bucket.start, bucket.stop
        if self.mirror is not None:
            self.mirror.rewrite(lo, hi)
        rows = self.arena.data[:, lo:hi]
        nbytes = rows.nbytes
        pipe = dist_opt.wire_pipeline
        if pipe is not None:
            if pipe.encode_block(
                self.arena.data, range(self.arena.num_ranks), lo, hi
            ):
                self._overflow = True
            nbytes = pipe.wire_nbytes(lo, hi) * rows.shape[0]
        with self._lock:
            self._wire_bytes += nbytes
        self._combined[lo:hi] = dist_opt.reducer.reduce_flat(
            rows, bucket.rel_boundaries()
        )
        if self.tracer is not None:
            self.tracer.record(
                self.COMM_LANE_OFFSET,
                "allreduce",
                t0,
                perf_counter() - self._t_base,
                nbytes=nbytes,
                label=f"bucket-{bucket.index}",
            )

    @staticmethod
    def _encode_rows(rows: np.ndarray, scale: float) -> bool:
        """fp16 wire round-trip in place; True on overflow.

        Elementwise identical to
        ``DistributedOptimizer._encode_wire_rows`` (scale -> fp16 cast
        -> finite check -> decode); applying it per bucket with the
        step's fixed scale reaches every element exactly once.
        """
        with np.errstate(over="ignore"):
            enc = (rows * scale).astype(np.float16)
            overflow = not bool(np.isfinite(enc).all())
        np.multiply(enc.astype(np.float32), 1.0 / scale, out=rows)
        return overflow
