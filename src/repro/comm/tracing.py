"""Opt-in per-rank communication tracing for the simulated cluster.

When a :class:`CommTracer` is attached to a
:class:`~repro.comm.transport.Cluster`, every clock-advancing operation
(send, dropped transmission attempt, recv, compute, advance, barrier)
is recorded with its simulated start/end timestamps and payload size.
Recording is strictly observational: the tracer never touches clocks,
queues, or cost accounting, so enabling it cannot perturb the cost
model — the invariants

* ``tracer.total_bytes() == cluster.total_bytes()``
* ``tracer.max_clock()   == cluster.max_clock()``

hold exactly after any run (asserted in ``tests/comm/test_tracing.py``
and ``benchmarks/bench_fig4_rvh_latency.py``).

The trace exports to the Chrome ``chrome://tracing`` / Perfetto JSON
format (one ``pid`` per cluster, one ``tid`` per rank, timestamps in
simulated microseconds) and to per-rank summary statistics.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Dict, List, Optional

#: Ops whose ``nbytes`` count toward transmitted-byte totals.  Dropped
#: attempts are included: the sender paid for them (see FaultPlan).
_WIRE_OPS = ("send", "drop")


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One clock-advancing operation on one simulated rank.

    ``t0``/``t1`` are simulated seconds (``t1 >= t0``); ``peer`` is the
    global rank on the other side of a point-to-point op, ``None`` for
    local ops and barriers.
    """

    rank: int
    op: str
    t0: float
    t1: float
    nbytes: int = 0
    peer: Optional[int] = None
    label: Optional[str] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class CommTracer:
    """Thread-safe recorder of :class:`TraceEvent` streams per rank."""

    def __init__(self) -> None:
        self._events: Dict[int, List[TraceEvent]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording (called from rank threads)
    # ------------------------------------------------------------------
    def record(
        self,
        rank: int,
        op: str,
        t0: float,
        t1: float,
        nbytes: int = 0,
        peer: Optional[int] = None,
        label: Optional[str] = None,
    ) -> None:
        ev = TraceEvent(rank, op, t0, t1, int(nbytes), peer, label)
        with self._lock:
            self._events.setdefault(rank, []).append(ev)

    def reset(self) -> None:
        with self._lock:
            self._events = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        """All events, ordered by rank then recording order."""
        with self._lock:
            return [ev for r in sorted(self._events) for ev in self._events[r]]

    def per_rank(self, rank: int) -> List[TraceEvent]:
        with self._lock:
            return list(self._events.get(rank, []))

    def total_bytes(self) -> int:
        """Bytes transmitted (successful sends + dropped attempts)."""
        return sum(ev.nbytes for ev in self.events if ev.op in _WIRE_OPS)

    def max_clock(self) -> float:
        """Largest simulated timestamp observed (0.0 for an empty trace)."""
        evs = self.events
        return max((ev.t1 for ev in evs), default=0.0)

    def summary(self) -> Dict[str, Any]:
        """Per-rank and aggregate statistics of the recorded trace."""
        ranks: Dict[int, Dict[str, Any]] = {}
        for ev in self.events:
            s = ranks.setdefault(
                ev.rank,
                {"events": 0, "sends": 0, "recvs": 0, "drops": 0,
                 "bytes_sent": 0, "compute_s": 0.0, "clock": 0.0},
            )
            s["events"] += 1
            if ev.op in _WIRE_OPS:
                s["bytes_sent"] += ev.nbytes
                s["sends"] += ev.op == "send"
                s["drops"] += ev.op == "drop"
            elif ev.op == "recv":
                s["recvs"] += 1
            elif ev.op == "compute":
                s["compute_s"] += ev.duration
            s["clock"] = max(s["clock"], ev.t1)
        return {
            "ranks": ranks,
            "total_bytes": sum(s["bytes_sent"] for s in ranks.values()),
            "max_clock": max((s["clock"] for s in ranks.values()), default=0.0),
            "total_events": sum(s["events"] for s in ranks.values()),
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome/Perfetto trace: complete ("X") events, µs timestamps."""
        trace_events = []
        for ev in self.events:
            args: Dict[str, Any] = {"nbytes": ev.nbytes}
            if ev.peer is not None:
                args["peer"] = ev.peer
            if ev.label:
                args["label"] = ev.label
            trace_events.append({
                "name": ev.label or ev.op,
                "cat": "comm" if ev.op in ("send", "recv", "drop", "barrier") else "local",
                "ph": "X",
                "pid": 0,
                "tid": ev.rank,
                "ts": ev.t0 * 1e6,
                "dur": ev.duration * 1e6,
                "args": args,
            })
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.comm simulated cluster"},
        }

    def save_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh, indent=1)
