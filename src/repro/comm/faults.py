"""Deterministic fault injection for the simulated cluster.

A :class:`FaultPlan` attached to a :class:`~repro.comm.transport.Cluster`
perturbs the transport without touching algorithm code, so every
collective (ring, RVH, AdasumRVH, hierarchical two-level) can be
exercised under the conditions the delayed/asynchronous-aggregation
literature studies (stragglers, message loss, rank death):

* **delays** — a straggler rank pays a multiplier on every message it
  sends (simulated clock only; results are unchanged);
* **drops** — the first ``count`` transmission attempts on a (src, dst)
  link are lost in transit.  ``Comm.send`` retransmits up to
  ``max_retries`` times with exponential ``backoff`` charged to the
  simulated clock, preserving FIFO order (the retry completes before
  the send returns, so later messages can never overtake a retried
  one — "reorder-safe");
* **kills** — a rank raises :class:`RankKilledError` at its N-th
  communication operation, mid-collective, and the cluster's abort
  machinery turns that into a prompt diagnostic
  :class:`~repro.comm.transport.CommError` for every other rank.

All state is reset at the start of every :meth:`Cluster.run`, so a plan
can be reused across runs deterministically.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple


class RankKilledError(RuntimeError):
    """Raised inside a simulated rank killed by a :class:`FaultPlan`.

    ``rank`` identifies the killed rank so supervisors (the elastic
    runtime) can react without parsing the message.
    """

    def __init__(self, message: str, rank: Optional[int] = None):
        super().__init__(message)
        self.rank = rank


class FaultPlan:
    """A deterministic schedule of injected faults.

    Parameters
    ----------
    max_retries:
        Default retransmission budget for dropped messages (per send).
    backoff:
        Base simulated-seconds penalty before a retransmission; attempt
        ``k`` waits ``backoff * 2**(k-1)``.
    """

    def __init__(self, max_retries: int = 0, backoff: float = 0.0):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.max_retries = max_retries
        self.backoff = backoff
        self._delays: Dict[int, float] = {}
        self._drops: Dict[Tuple[int, int], int] = {}
        self._kills: Dict[int, int] = {}
        self._drops_left: Dict[Tuple[int, int], int] = {}
        self._ops_done: Dict[int, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Plan construction (chainable)
    # ------------------------------------------------------------------
    def delay_rank(self, rank: int, factor: float) -> "FaultPlan":
        """Multiply the send cost of every message ``rank`` transmits."""
        if factor <= 0:
            raise ValueError("delay factor must be > 0")
        self._delays[rank] = float(factor)
        return self

    def drop_messages(self, src: int, dst: int, count: int = 1) -> "FaultPlan":
        """Lose the first ``count`` transmission attempts on (src, dst)."""
        if count < 1:
            raise ValueError("drop count must be >= 1")
        self._drops[(src, dst)] = self._drops.get((src, dst), 0) + count
        self._drops_left[(src, dst)] = self._drops[(src, dst)]
        return self

    def kill_rank(self, rank: int, after_ops: int = 0) -> "FaultPlan":
        """Kill ``rank`` on its ``after_ops + 1``-th comm op (send/recv/barrier)."""
        if after_ops < 0:
            raise ValueError("after_ops must be >= 0")
        self._kills[rank] = after_ops
        return self

    # ------------------------------------------------------------------
    # Transport hooks
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore per-run state (drop budgets, op counters)."""
        with self._lock:
            self._drops_left = dict(self._drops)
            self._ops_done = {}

    def delay_factor(self, rank: int) -> float:
        return self._delays.get(rank, 1.0)

    def consume_drop(self, src: int, dst: int) -> bool:
        """True when this transmission attempt is lost (budget consumed)."""
        key = (src, dst)
        with self._lock:
            left = self._drops_left.get(key, 0)
            if left > 0:
                self._drops_left[key] = left - 1
                return True
        return False

    def on_op(self, rank: int, op: str, clock: float) -> None:
        """Count one comm op; raise :class:`RankKilledError` when due."""
        if rank not in self._kills:
            return
        with self._lock:
            done = self._ops_done.get(rank, 0)
            if done >= self._kills[rank]:
                raise RankKilledError(
                    f"rank {rank} killed by fault plan at comm op #{done + 1} "
                    f"({op}, simulated t={clock:.6g})",
                    rank=rank,
                )
            self._ops_done[rank] = done + 1
