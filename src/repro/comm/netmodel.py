"""α–β network cost model and analytic collective latencies.

The standard model from the collective-communication literature the
paper builds on (Chan et al. 2007 [10]; van de Geijn 1994 [35]): a
message of ``n`` bytes between two ranks costs ``α + β·n`` seconds,
where α is per-message latency and β inverse bandwidth.  Reductions add
``γ·n`` per byte combined.

The presets below model the paper's platforms:

* ``nccl_nvlink`` — DGX-2-class NVSwitch fabric (Section 5.3).
* ``infiniband`` — 100 Gb/s IB between nodes, as in the Figure 4 and
  ResNet-50 experiments (Section 4.2.3, 5.1).
* ``pcie`` — intra-node PCIe gen3 interconnect.
* ``slow_tcp`` — the 40 GbE TCP network of Section 5.2, with the high
  per-message software latency that motivates gradient accumulation.

Absolute constants are order-of-magnitude calibrated, not measured; the
benchmarks reproduce latency *shapes* and *ratios* (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """α–β(–γ) cost model for one link class.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Seconds per byte transferred (inverse bandwidth).
    gamma:
        Seconds per byte of local reduction arithmetic.
    name:
        Human-readable label used in benchmark tables.
    """

    alpha: float
    beta: float
    gamma: float = 0.0
    name: str = "custom"

    def send_cost(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    def reduce_cost(self, nbytes: int) -> float:
        """Cost of locally combining ``nbytes`` of data."""
        return self.gamma * nbytes

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def nccl_nvlink() -> "NetworkModel":
        """NVSwitch-class fabric: ~1.5 µs latency, ~120 GB/s effective."""
        return NetworkModel(alpha=1.5e-6, beta=1.0 / 120e9, gamma=1.0 / 600e9, name="nccl-nvlink")

    @staticmethod
    def infiniband() -> "NetworkModel":
        """100 Gb/s InfiniBand: ~2 µs latency, ~11 GB/s effective."""
        return NetworkModel(alpha=2.0e-6, beta=1.0 / 11e9, gamma=1.0 / 200e9, name="infiniband")

    @staticmethod
    def pcie() -> "NetworkModel":
        """PCIe gen3 x16 intra-node: ~5 µs, ~12 GB/s."""
        return NetworkModel(alpha=5.0e-6, beta=1.0 / 12e9, gamma=1.0 / 200e9, name="pcie")

    @staticmethod
    def slow_tcp() -> "NetworkModel":
        """40 GbE TCP: ~50 µs software latency, ~3.5 GB/s effective."""
        return NetworkModel(alpha=5.0e-5, beta=1.0 / 3.5e9, gamma=1.0 / 200e9, name="slow-tcp")


# ----------------------------------------------------------------------
# Analytic collective latencies (validated against the executed
# simulation in tests/comm/test_cost_model.py)
# ----------------------------------------------------------------------
def ring_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of a ring allreduce of ``nbytes`` over ``p`` ranks.

    2(p-1) steps, each moving ``n/p`` bytes; the reduce-scatter half also
    pays the reduction cost.  This models NCCL's default large-message
    algorithm (the "NCCL" baseline of the paper's Figure 4).
    """
    if p == 1:
        return 0.0
    chunk = nbytes / p
    step = net.send_cost(chunk)
    return (p - 1) * (step + net.reduce_cost(chunk)) + (p - 1) * step


def _pow2_block_overhead(nbytes: float, net: NetworkModel, adasum: bool) -> float:
    """Extra latency of one ``tree_any`` block-combine level.

    Non-power-of-two rank counts decompose into the largest power-of-two
    block and the remainder (``largest_pow2_below``): the two blocks
    reduce independently (in parallel), the remainder's root ships its
    full vector to the main block's root for one pairwise combine, and
    the combined vector is broadcast back with one return hop.  For
    Adasum the pairwise combine also pays the dot products and scaled
    combination (≈3× a plain sum's arithmetic).
    """
    combine = net.reduce_cost(nbytes) * (3 if adasum else 1)
    return net.send_cost(nbytes) + combine + net.send_cost(nbytes)


def rvh_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of recursive-vector-halving allreduce (elementwise op).

    log p reduce-scatter rounds exchanging n/2, n/4, ... bytes, then
    log p allgather rounds with the same sizes — the latency-and-
    bandwidth-optimal algorithm of [10, 35] on hypercubes.

    Non-power-of-two ``p`` is modeled as the ``tree_any`` pow2-block
    decomposition (largest power-of-two block + remainder, reduced in
    parallel, then one full-vector combine/broadcast exchange) instead
    of silently flooring ``log2(p)`` — which used to cost p=6 the same
    as p=4.
    """
    if p <= 1:
        return 0.0
    if p & (p - 1):
        p0 = 1 << (p.bit_length() - 1)
        blocks = max(
            rvh_allreduce_cost(nbytes, p0, net),
            rvh_allreduce_cost(nbytes, p - p0, net),
        )
        return blocks + _pow2_block_overhead(nbytes, net, adasum=False)
    rounds = p.bit_length() - 1
    total = 0.0
    size = nbytes
    for _ in range(rounds):
        half = size / 2
        total += net.send_cost(half) + net.reduce_cost(half)  # reduce-scatter round
        total += net.send_cost(half)  # matching allgather round
        size = half
    return total


def nccl_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Modeled NCCL sum baseline for Figure 4.

    NCCL selects its algorithm by message size (tree/latency-optimal for
    small messages, ring/bandwidth-optimal for large); the envelope of
    the two analytic costs models that adaptivity.
    """
    return min(ring_allreduce_cost(nbytes, p, net), rvh_allreduce_cost(nbytes, p, net))


def adasum_rvh_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of Algorithm 1 (AdasumRVH).

    Equals the RVH cost plus, per recursion level, the small allreduce
    of the three partial dot products (3 doubles) within a group of
    ``2^level`` ranks (recursive doubling: ``level`` rounds of 24-byte
    messages), plus the extra arithmetic of the dot products and scaled
    combination (≈3× the work of a plain sum).

    Non-power-of-two ``p`` uses the same ``tree_any`` pow2-block
    decomposition as :func:`rvh_allreduce_cost`, with the block-combine
    paying the Adasum pairwise arithmetic.
    """
    if p <= 1:
        return 0.0
    if p & (p - 1):
        p0 = 1 << (p.bit_length() - 1)
        blocks = max(
            adasum_rvh_cost(nbytes, p0, net),
            adasum_rvh_cost(nbytes, p - p0, net),
        )
        return blocks + _pow2_block_overhead(nbytes, net, adasum=True)
    rounds = p.bit_length() - 1
    total = 0.0
    size = nbytes
    for level in range(1, rounds + 1):
        half = size / 2
        total += net.send_cost(half)
        # Dot products + scaled combination over the local half.
        total += 3 * net.reduce_cost(half)
        # Allreduce of v = [a·b, a·a, b·b] among the 2^level group.
        total += level * net.send_cost(24)
        total += net.send_cost(half)  # allgather round
        size = half
    return total


def adasum_ring_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Analytic latency of the ring Adasum (§4.2.3): a serial chain of
    P-1 full-vector hops plus a binomial broadcast.

    Lives beside :func:`adasum_rvh_cost` so the Figure 4 style
    comparisons draw every analytic model from one module (historically
    this was defined next to the executable ring in
    ``repro.core.adasum_ring``, which still re-exports it).
    """
    if p == 1:
        return 0.0
    chain = (p - 1) * (net.send_cost(nbytes) + net.reduce_cost(2 * nbytes))
    bcast = math.ceil(math.log2(p)) * net.send_cost(nbytes)
    return chain + bcast


def hierarchical_allreduce_cost(
    nbytes: int,
    nodes: int,
    gpus_per_node: int,
    intra: NetworkModel,
    inter: NetworkModel,
    cross_node_adasum: bool = False,
    contention: float = 1.0,
) -> float:
    """Two-level allreduce: intra-node reduce-scatter/allgather (NCCL)
    bracketing a cross-node reduction (Section 4.2.2).

    Each GPU ends the local reduce-scatter holding ``nbytes / g`` bytes
    and participates in a cross-node allreduce of that slice (RVH or
    AdasumRVH), followed by the local allgather.  The slice size is one
    expression for every ``g`` — including ``g == 1`` — and is kept as a
    float: truncating to ``int`` dropped the fractional bytes whenever
    ``nbytes % g != 0``, understating the cross-node term (the executed
    simulation charges every byte).

    ``contention`` scales the inter-node bandwidth term: the ``g`` local
    ranks run their cross-node slice reductions concurrently over one
    shared NIC, so each sees ``beta * contention`` effective inverse
    bandwidth (``contention = g`` models full serialization on the NIC;
    1.0 models per-rank dedicated links).
    """
    g = gpus_per_node
    slice_bytes = nbytes / g
    local = 0.0
    if g > 1:
        local += (g - 1) * (intra.send_cost(slice_bytes) + intra.reduce_cost(slice_bytes))
        local += (g - 1) * intra.send_cost(slice_bytes)  # allgather
    if contention != 1.0:
        inter = dataclasses.replace(inter, beta=inter.beta * contention)
    if cross_node_adasum:
        cross = adasum_rvh_cost(slice_bytes, nodes, inter)
    else:
        cross = rvh_allreduce_cost(slice_bytes, nodes, inter)
    return local + cross


@dataclasses.dataclass(frozen=True)
class TwoLevelNetwork:
    """Heterogeneous two-level fabric: fast intra-node, slow inter-node.

    Duck-types the :class:`NetworkModel` costing interface the transport
    uses (``send_cost`` / ``reduce_cost``) and additionally provides
    :meth:`pair_send_cost`, which :meth:`repro.comm.transport.Comm.send`
    prefers when present — so an executed collective on a
    :class:`~repro.comm.transport.Cluster` automatically pays NVLink
    prices for messages that stay inside a node and InfiniBand (or
    worse) prices across nodes.

    Attributes
    ----------
    intra, inter:
        α–β(–γ) models for the two link classes.
    gpus_per_node:
        Node width; ranks ``[k*g, (k+1)*g)`` share a node.
    contention:
        Multiplier on the inter-node β term, modeling the node's local
        ranks sharing one NIC for their concurrent cross-node slices
        (``gpus_per_node`` = fully serialized, 1.0 = dedicated links).
    """

    intra: NetworkModel
    inter: NetworkModel
    gpus_per_node: int
    contention: float = 1.0
    name: str = "two-level"

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def link_for(self, src: int, dst: int) -> NetworkModel:
        """The link class a ``src -> dst`` message travels over."""
        return self.intra if self.node_of(src) == self.node_of(dst) else self.inter

    def pair_send_cost(self, nbytes: int, src: int, dst: int) -> float:
        """Cost of one point-to-point message between specific ranks."""
        link = self.link_for(src, dst)
        if link is self.inter:
            return link.alpha + link.beta * self.contention * nbytes
        return link.send_cost(nbytes)

    def send_cost(self, nbytes: int) -> float:
        """Pairless fallback (conservative: the slow inter-node link)."""
        return self.inter.alpha + self.inter.beta * self.contention * nbytes

    def reduce_cost(self, nbytes: int) -> float:
        """Local reduction arithmetic (on-node, intra γ)."""
        return self.intra.reduce_cost(nbytes)

    @staticmethod
    def nvlink_ib(gpus_per_node: int = 4, contention: float = None) -> "TwoLevelNetwork":
        """The paper's Azure cluster shape: NVSwitch inside each node,
        100 Gb/s InfiniBand between nodes, NIC shared by the node's
        GPUs (contention defaults to ``gpus_per_node``)."""
        return TwoLevelNetwork(
            intra=NetworkModel.nccl_nvlink(),
            inter=NetworkModel.infiniband(),
            gpus_per_node=gpus_per_node,
            contention=float(gpus_per_node if contention is None else contention),
            name=f"nvlink+ib/{gpus_per_node}",
        )
