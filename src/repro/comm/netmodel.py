"""α–β network cost model and analytic collective latencies.

The standard model from the collective-communication literature the
paper builds on (Chan et al. 2007 [10]; van de Geijn 1994 [35]): a
message of ``n`` bytes between two ranks costs ``α + β·n`` seconds,
where α is per-message latency and β inverse bandwidth.  Reductions add
``γ·n`` per byte combined.

The presets below model the paper's platforms:

* ``nccl_nvlink`` — DGX-2-class NVSwitch fabric (Section 5.3).
* ``infiniband`` — 100 Gb/s IB between nodes, as in the Figure 4 and
  ResNet-50 experiments (Section 4.2.3, 5.1).
* ``pcie`` — intra-node PCIe gen3 interconnect.
* ``slow_tcp`` — the 40 GbE TCP network of Section 5.2, with the high
  per-message software latency that motivates gradient accumulation.

Absolute constants are order-of-magnitude calibrated, not measured; the
benchmarks reproduce latency *shapes* and *ratios* (see DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import math


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """α–β(–γ) cost model for one link class.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Seconds per byte transferred (inverse bandwidth).
    gamma:
        Seconds per byte of local reduction arithmetic.
    name:
        Human-readable label used in benchmark tables.
    """

    alpha: float
    beta: float
    gamma: float = 0.0
    name: str = "custom"

    def send_cost(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        return self.alpha + self.beta * nbytes

    def reduce_cost(self, nbytes: int) -> float:
        """Cost of locally combining ``nbytes`` of data."""
        return self.gamma * nbytes

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def nccl_nvlink() -> "NetworkModel":
        """NVSwitch-class fabric: ~1.5 µs latency, ~120 GB/s effective."""
        return NetworkModel(alpha=1.5e-6, beta=1.0 / 120e9, gamma=1.0 / 600e9, name="nccl-nvlink")

    @staticmethod
    def infiniband() -> "NetworkModel":
        """100 Gb/s InfiniBand: ~2 µs latency, ~11 GB/s effective."""
        return NetworkModel(alpha=2.0e-6, beta=1.0 / 11e9, gamma=1.0 / 200e9, name="infiniband")

    @staticmethod
    def pcie() -> "NetworkModel":
        """PCIe gen3 x16 intra-node: ~5 µs, ~12 GB/s."""
        return NetworkModel(alpha=5.0e-6, beta=1.0 / 12e9, gamma=1.0 / 200e9, name="pcie")

    @staticmethod
    def slow_tcp() -> "NetworkModel":
        """40 GbE TCP: ~50 µs software latency, ~3.5 GB/s effective."""
        return NetworkModel(alpha=5.0e-5, beta=1.0 / 3.5e9, gamma=1.0 / 200e9, name="slow-tcp")


# ----------------------------------------------------------------------
# Analytic collective latencies (validated against the executed
# simulation in tests/comm/test_cost_model.py)
# ----------------------------------------------------------------------
def ring_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of a ring allreduce of ``nbytes`` over ``p`` ranks.

    2(p-1) steps, each moving ``n/p`` bytes; the reduce-scatter half also
    pays the reduction cost.  This models NCCL's default large-message
    algorithm (the "NCCL" baseline of the paper's Figure 4).
    """
    if p == 1:
        return 0.0
    chunk = nbytes / p
    step = net.send_cost(chunk)
    return (p - 1) * (step + net.reduce_cost(chunk)) + (p - 1) * step


def rvh_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of recursive-vector-halving allreduce (elementwise op).

    log p reduce-scatter rounds exchanging n/2, n/4, ... bytes, then
    log p allgather rounds with the same sizes — the latency-and-
    bandwidth-optimal algorithm of [10, 35] on hypercubes.
    """
    if p == 1:
        return 0.0
    rounds = int(math.log2(p))
    total = 0.0
    size = nbytes
    for _ in range(rounds):
        half = size / 2
        total += net.send_cost(half) + net.reduce_cost(half)  # reduce-scatter round
        total += net.send_cost(half)  # matching allgather round
        size = half
    return total


def nccl_allreduce_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Modeled NCCL sum baseline for Figure 4.

    NCCL selects its algorithm by message size (tree/latency-optimal for
    small messages, ring/bandwidth-optimal for large); the envelope of
    the two analytic costs models that adaptivity.
    """
    return min(ring_allreduce_cost(nbytes, p, net), rvh_allreduce_cost(nbytes, p, net))


def adasum_rvh_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Latency of Algorithm 1 (AdasumRVH).

    Equals the RVH cost plus, per recursion level, the small allreduce
    of the three partial dot products (3 doubles) within a group of
    ``2^level`` ranks (recursive doubling: ``level`` rounds of 24-byte
    messages), plus the extra arithmetic of the dot products and scaled
    combination (≈3× the work of a plain sum).
    """
    if p == 1:
        return 0.0
    rounds = int(math.log2(p))
    total = 0.0
    size = nbytes
    for level in range(1, rounds + 1):
        half = size / 2
        total += net.send_cost(half)
        # Dot products + scaled combination over the local half.
        total += 3 * net.reduce_cost(half)
        # Allreduce of v = [a·b, a·a, b·b] among the 2^level group.
        total += level * net.send_cost(24)
        total += net.send_cost(half)  # allgather round
        size = half
    return total


def adasum_ring_cost(nbytes: int, p: int, net: NetworkModel) -> float:
    """Analytic latency of the ring Adasum (§4.2.3): a serial chain of
    P-1 full-vector hops plus a binomial broadcast.

    Lives beside :func:`adasum_rvh_cost` so the Figure 4 style
    comparisons draw every analytic model from one module (historically
    this was defined next to the executable ring in
    ``repro.core.adasum_ring``, which still re-exports it).
    """
    if p == 1:
        return 0.0
    chain = (p - 1) * (net.send_cost(nbytes) + net.reduce_cost(2 * nbytes))
    bcast = math.ceil(math.log2(p)) * net.send_cost(nbytes)
    return chain + bcast


def hierarchical_allreduce_cost(
    nbytes: int,
    nodes: int,
    gpus_per_node: int,
    intra: NetworkModel,
    inter: NetworkModel,
    cross_node_adasum: bool = False,
) -> float:
    """Two-level allreduce: intra-node reduce-scatter/allgather (NCCL)
    bracketing a cross-node reduction (Section 4.2.2).

    Each GPU ends the local reduce-scatter holding ``n / g`` bytes and
    participates in a cross-node allreduce of that slice (RVH or
    AdasumRVH), followed by the local allgather.
    """
    g = gpus_per_node
    local = 0.0
    if g > 1:
        chunk = nbytes / g
        local += (g - 1) * (intra.send_cost(chunk) + intra.reduce_cost(chunk))  # reduce-scatter
        local += (g - 1) * intra.send_cost(chunk)  # allgather
    slice_bytes = nbytes / g if g > 1 else nbytes
    if cross_node_adasum:
        cross = adasum_rvh_cost(int(slice_bytes), nodes, inter)
    else:
        cross = rvh_allreduce_cost(int(slice_bytes), nodes, inter)
    return local + cross
