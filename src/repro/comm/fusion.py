"""Tensor fusion with per-tensor boundary bookkeeping (paper §4.4.3).

Horovod fuses many small per-layer tensors into one buffer before
calling allreduce, amortizing per-message latency.  Plain summation can
ignore tensor boundaries, but Adasum needs them: dot products and norms
must be computed *per layer* (paper §3.6).  :class:`FusionBuffer`
implements the copy-in / reduce / copy-out cycle and records the layout
(:class:`FusedTensorLayout`) that the Adasum reduction consults.

Because every rank fuses the same set of tensors with the same layer
sizes, the layout is identical everywhere and never needs to be
communicated (the "bookkeeping is stored locally and does not increase
communication overheads" property of the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class FusedTensorLayout:
    """Immutable layout of a fused buffer.

    Attributes
    ----------
    names:
        Tensor names in fusion order.
    slices:
        ``(start, stop)`` index ranges of each tensor in the flat buffer.
    shapes:
        Original shapes used to unflatten on copy-out.
    """

    names: Tuple[str, ...]
    slices: Tuple[Tuple[int, int], ...]
    shapes: Tuple[Tuple[int, ...], ...]

    @property
    def total_size(self) -> int:
        return self.slices[-1][1] if self.slices else 0

    def boundaries(self) -> List[int]:
        """Flat-buffer offsets delimiting tensors (len = #tensors + 1)."""
        if not self.slices:
            return [0]
        return [s for s, _ in self.slices] + [self.slices[-1][1]]

    def slices_within(self, start: int, stop: int) -> List[Tuple[str, int, int]]:
        """Per-tensor sub-ranges intersecting the buffer range [start, stop).

        This is what a rank holding a *slice* of the fused buffer (after
        a reduce-scatter phase) uses to compute per-layer dot products of
        only the layers it owns.  Returned offsets are absolute.
        """
        out = []
        for name, (lo, hi) in zip(self.names, self.slices):
            a, b = max(lo, start), min(hi, stop)
            if a < b:
                out.append((name, a, b))
        return out


def layout_of(tensors: Sequence[Tuple[str, np.ndarray]]) -> FusedTensorLayout:
    """Build a :class:`FusedTensorLayout` covering *all* named tensors.

    Unlike :meth:`FusionBuffer.plan` there is no size threshold — the
    result is the single contiguous layout used by
    :class:`~repro.core.arena.GradientArena` to give every rank one flat
    gradient buffer with named zero-copy views.
    """
    names, slices, shapes = [], [], []
    offset = 0
    for name, arr in tensors:
        names.append(name)
        shapes.append(tuple(arr.shape))
        slices.append((offset, offset + int(arr.size)))
        offset += int(arr.size)
    return FusedTensorLayout(tuple(names), tuple(slices), tuple(shapes))


class FusionBuffer:
    """Reusable fusion buffer with a byte-size threshold.

    Mirrors ``HOROVOD_FUSION_THRESHOLD``: tensors are greedily packed in
    arrival order until adding the next one would exceed the threshold;
    each full (or flushed) buffer forms one fusion *group* that is
    reduced with a single collective call.
    """

    def __init__(self, threshold_bytes: int = 2 * 1024 * 1024, dtype=np.float32):
        if threshold_bytes <= 0:
            raise ValueError("fusion threshold must be positive")
        self.threshold_bytes = threshold_bytes
        self.dtype = np.dtype(dtype)

    def plan(self, tensors: Sequence[Tuple[str, np.ndarray]]) -> List[FusedTensorLayout]:
        """Split named tensors into fusion groups under the threshold.

        A single tensor larger than the threshold gets its own group
        (it is never split).
        """
        groups: List[List[Tuple[str, np.ndarray]]] = []
        current: List[Tuple[str, np.ndarray]] = []
        current_bytes = 0
        for name, arr in tensors:
            nbytes = arr.size * self.dtype.itemsize
            if current and current_bytes + nbytes > self.threshold_bytes:
                groups.append(current)
                current, current_bytes = [], 0
            current.append((name, arr))
            current_bytes += nbytes
        if current:
            groups.append(current)

        layouts = []
        for group in groups:
            names, slices, shapes = [], [], []
            offset = 0
            for name, arr in group:
                names.append(name)
                shapes.append(arr.shape)
                slices.append((offset, offset + arr.size))
                offset += arr.size
            layouts.append(
                FusedTensorLayout(tuple(names), tuple(slices), tuple(shapes))
            )
        return layouts

    def pack(
        self, layout: FusedTensorLayout, tensors: Dict[str, np.ndarray]
    ) -> np.ndarray:
        """Copy named tensors into one flat buffer per ``layout``."""
        buf = np.empty(layout.total_size, dtype=self.dtype)
        for name, (lo, hi), shape in zip(layout.names, layout.slices, layout.shapes):
            arr = tensors[name]
            if arr.shape != shape:
                raise ValueError(f"tensor {name!r} shape {arr.shape} != layout {shape}")
            buf[lo:hi] = arr.reshape(-1)
        return buf

    def unpack(
        self, layout: FusedTensorLayout, buf: np.ndarray
    ) -> Dict[str, np.ndarray]:
        """Split a reduced flat buffer back into named, shaped tensors."""
        if buf.size != layout.total_size:
            raise ValueError(f"buffer size {buf.size} != layout {layout.total_size}")
        return {
            name: buf[lo:hi].reshape(shape).copy()
            for name, (lo, hi), shape in zip(layout.names, layout.slices, layout.shapes)
        }
