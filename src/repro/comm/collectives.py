"""Collective operations over the simulated transport.

These are the baseline algorithms the paper compares against and builds
on: the ring allreduce used for synchronous SGD (and by NCCL for large
messages), recursive doubling for small messages, and the
reduce-scatter/allgather pair of the recursive-vector-halving scheme
that Algorithm 1 modifies.  All run verbatim over :class:`Comm`
handles, so the same code path is used for correctness tests and for
simulated-latency measurements.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.comm.transport import Comm

ReduceOp = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _sum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def _require_power_of_two(size: int, what: str) -> int:
    levels = size.bit_length() - 1
    if 1 << levels != size:
        raise ValueError(f"{what} requires a power-of-two rank count, got {size}")
    return levels


def allreduce_ring(comm: Comm, x: np.ndarray, op: ReduceOp = _sum) -> np.ndarray:
    """Ring allreduce: reduce-scatter ring then allgather ring.

    Works for any rank count; the vector is split into ``size`` chunks.
    """
    p, r = comm.size, comm.rank
    if p == 1:
        return x.copy()
    x = x.copy()
    chunks = np.array_split(np.arange(x.size), p)
    flat = x.reshape(-1)
    right = (r + 1) % p
    left = (r - 1) % p
    # Reduce-scatter: after p-1 steps, rank r owns the fully reduced chunk r+1.
    for step in range(p - 1):
        send_idx = (r - step) % p
        recv_idx = (r - step - 1) % p
        comm.send(flat[chunks[send_idx]], right)
        incoming = comm.recv(left)
        comm.compute(incoming.nbytes, label="reduce")
        flat[chunks[recv_idx]] = op(flat[chunks[recv_idx]], incoming)
    # Allgather: circulate the reduced chunks.
    for step in range(p - 1):
        send_idx = (r - step + 1) % p
        recv_idx = (r - step) % p
        comm.send(flat[chunks[send_idx]], right)
        flat[chunks[recv_idx]] = comm.recv(left)
    return x


def allreduce_recursive_doubling(comm: Comm, x: np.ndarray, op: ReduceOp = _sum) -> np.ndarray:
    """Recursive-doubling allreduce: log p full-vector exchanges.

    Latency-optimal for small messages (used for the partial dot
    products inside Algorithm 1).  Requires power-of-two ranks.
    """
    levels = _require_power_of_two(comm.size, "recursive doubling")
    x = x.copy()
    for level in range(levels):
        peer = comm.rank ^ (1 << level)
        incoming = comm.sendrecv(x, peer)
        comm.compute(incoming.nbytes)
        x = op(x, incoming)
    return x


def allreduce_group(
    comm: Comm, x: np.ndarray, group: Sequence[int], op: ReduceOp = _sum
) -> np.ndarray:
    """Allreduce among the ranks in ``group`` (power-of-two sized).

    This is the ``ALLREDUCE(v, +, group)`` primitive on line 17 of the
    paper's Algorithm 1, used to finish the partial dot products.
    """
    group = sorted(group)
    if comm.rank not in group:
        raise ValueError(f"rank {comm.rank} not in group {group}")
    g = len(group)
    if g == 1:
        return x.copy()
    levels = _require_power_of_two(g, "group allreduce")
    my_pos = group.index(comm.rank)
    x = x.copy()
    for level in range(levels):
        peer = group[my_pos ^ (1 << level)]
        incoming = comm.sendrecv(x, peer)
        comm.compute(incoming.nbytes)
        x = op(x, incoming)
    return x


def reduce_scatter_halving(comm: Comm, x: np.ndarray, op: ReduceOp = _sum):
    """Recursive-vector-halving reduce-scatter.

    Returns ``(slice_data, slice_range)`` where ``slice_range`` is the
    ``(start, stop)`` index range of the full vector this rank ends up
    owning (fully reduced).  Requires power-of-two ranks.
    """
    levels = _require_power_of_two(comm.size, "vector halving")
    rank = comm.rank
    data = x.reshape(-1).copy()
    start, stop = 0, data.size
    d = 1
    for _ in range(levels):
        mid = start + (stop - start) // 2
        if (rank // d) % 2 == 0:  # left neighbor: keeps the left half
            peer = rank + d
            comm.send(data[mid - start :], peer)
            incoming = comm.recv(peer)
            data = data[: mid - start]
            comm.compute(incoming.nbytes)
            data = op(data, incoming)
            stop = mid
        else:  # right neighbor: keeps the right half
            peer = rank - d
            comm.send(data[: mid - start], peer)
            incoming = comm.recv(peer)
            data = data[mid - start :]
            comm.compute(incoming.nbytes)
            data = op(data, incoming)
            start = mid
        d *= 2
    return data, (start, stop)


def allgather_doubling(comm: Comm, data: np.ndarray, slice_range, total_size: int) -> np.ndarray:
    """Recursive-doubling allgather, inverse of the halving reduce-scatter."""
    levels = _require_power_of_two(comm.size, "vector doubling")
    rank = comm.rank
    start, stop = slice_range
    out = np.empty(total_size, dtype=data.dtype)
    out[start:stop] = data
    d = comm.size // 2
    for _ in range(levels):
        peer_is_right = (rank // d) % 2 == 0
        peer = rank + d if peer_is_right else rank - d
        comm.send(out[start:stop], peer)
        incoming = comm.recv(peer)
        if peer_is_right:
            out[stop : stop + incoming.size] = incoming
            stop += incoming.size
        else:
            out[start - incoming.size : start] = incoming
            start -= incoming.size
        d //= 2
    return out


def cluster_allreduce(
    comm: Comm,
    x: np.ndarray,
    op: str = "sum",
    topology: str = "ring",
    boundaries: Sequence[int] = None,
    gpus_per_node: int = 1,
) -> np.ndarray:
    """Declarative cluster allreduce: dispatch ``(op, topology)`` to the
    matching collective.

    ``adasum`` routes through the strategy registry's cluster form
    (``get_strategy(op, topology).combine_comm`` — AdasumRVH or the
    ring/linear chain, with per-layer ``boundaries``); ``sum`` and
    ``average`` run the elementwise collectives here (``ring``,
    recursive doubling for ``tree``/``tree_any``, reduce-scatter +
    allgather for ``rvh``), dividing by the rank count for ``average``.
    The ``hierarchical`` topology composes intra-node reduce-scatter /
    allgather with a cross-node reduction over node peers, with
    ``gpus_per_node`` ranks per node (bound onto the registry cell for
    ``adasum``).  This is the entry point the CLI ``trace`` command
    drives, so every traced collective goes through the same dispatcher
    as training.
    """
    op = str(getattr(op, "value", op)).lower()
    topology = str(topology).lower()
    if op == "adasum":
        # Lazy import: repro.comm.__init__ imports this module, and the
        # strategies module imports repro.comm.transport back.
        from repro.core.strategies import get_strategy

        strategy = get_strategy(op, topology)
        if topology == "hierarchical":
            strategy = strategy.bind(gpus_per_node=gpus_per_node)
        return strategy.combine_comm(comm, x, boundaries)
    if op not in ("sum", "average"):
        raise ValueError(f"unknown reduction op {op!r} for cluster_allreduce")
    if topology == "ring":
        result = allreduce_ring(comm, x)
    elif topology in ("tree", "tree_any", "linear"):
        result = allreduce_recursive_doubling(comm, x)
    elif topology == "rvh":
        piece, slice_range = reduce_scatter_halving(comm, x)
        result = allgather_doubling(comm, piece, slice_range, x.size).reshape(x.shape)
    elif topology == "hierarchical":
        from repro.comm.hierarchical import hierarchical_sum_allreduce

        g = gpus_per_node if gpus_per_node and comm.size % gpus_per_node == 0 else 1
        return hierarchical_sum_allreduce(
            comm, x, g, average=op == "average"
        ).reshape(x.shape)
    else:
        raise ValueError(f"unknown topology {topology!r} for cluster_allreduce")
    if op == "average":
        result = result / comm.size
    return result


def broadcast(comm: Comm, x: np.ndarray, root: int = 0) -> np.ndarray:
    """Binomial-tree broadcast from ``root`` (classic MPI algorithm)."""
    size = comm.size
    if size == 1:
        return x.copy()
    rel = (comm.rank - root) % size
    data = x.copy() if comm.rank == root else None
    # Phase 1: every non-root rank receives exactly once.
    mask = 1
    while mask < size:
        if rel & mask:
            src = ((rel - mask) + root) % size
            data = comm.recv(src)
            break
        mask <<= 1
    # Phase 2: forward down the tree.
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            dst = (rel + mask + root) % size
            comm.send(data, dst)
        mask >>= 1
    assert data is not None, f"broadcast failed to reach rank {comm.rank}"
    return data
