"""In-process simulated cluster: threads + blocking queues + virtual clocks.

Each simulated rank runs a user function in its own thread and talks to
peers through a :class:`Comm` handle offering blocking ``send``/``recv``
(the SEND/RECV primitives of the paper's Algorithm 1).  Every rank
carries a virtual clock advanced by the α–β :class:`NetworkModel`; a
receive synchronizes the receiver's clock with the message's arrival
time, so ``max(clock)`` after a collective is its simulated latency.

Robustness contract (``tests/comm/test_hang_detection.py``): all
blocking waits — mailbox receives and barriers — share one wall-clock
deadline per :meth:`Cluster.run`.  A rank blocked past the deadline
raises a diagnostic :class:`CommError` naming itself, its blocking op,
its peer, and its simulated clock; the first failure on any rank aborts
every other blocked rank promptly.  ``run`` never returns partial
results: an unjoined thread is itself a :class:`CommError`.  Runs are
generation-tagged so a stale thread left over from a timed-out run can
never touch a later run's queues or barriers.

Fault injection (:class:`~repro.comm.faults.FaultPlan`) and opt-in
tracing (:class:`~repro.comm.tracing.CommTracer`) hook in here; see
``docs/simulator.md``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import queue
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.faults import FaultPlan, RankKilledError
from repro.comm.netmodel import NetworkModel
from repro.comm.tracing import CommTracer

#: Wall-clock granularity at which blocked receives notice an abort.
_POLL_SECONDS = 0.02


class CommError(RuntimeError):
    """Raised when a simulated run fails (stuck ranks identified).

    Structured attributes let callers (the elastic runtime's failure
    classifier) react without string-matching the message:

    * ``rank_errors`` — maps rank → the exception that rank raised on
      its own (kills, timeouts, user errors); ranks that merely echoed
      the abort of another rank's failure are excluded.
    * ``hung_ranks`` — ranks whose threads never exited the run.
    """

    def __init__(self, message: str = ""):
        super().__init__(message)
        self.rank_errors: Dict[int, BaseException] = {}
        self.hung_ranks: List[int] = []

    @property
    def killed_ranks(self) -> List[int]:
        """Ranks that died to an injected :class:`RankKilledError`."""
        return sorted(
            r for r, e in self.rank_errors.items() if isinstance(e, RankKilledError)
        )

    @property
    def timeout_ranks(self) -> List[int]:
        """Ranks whose blocking wait hit the run deadline."""
        return sorted(
            r for r, e in self.rank_errors.items() if isinstance(e, CommTimeoutError)
        )


class CommTimeoutError(CommError):
    """A blocking wait exceeded the run deadline (diagnostics attached).

    ``rank``/``op``/``peer`` identify the blocked wait structurally
    (``peer`` is ``None`` for barriers).
    """

    def __init__(
        self,
        message: str = "",
        rank: Optional[int] = None,
        op: Optional[str] = None,
        peer: Optional[int] = None,
    ):
        super().__init__(message)
        self.rank = rank
        self.op = op
        self.peer = peer


class _AbortError(RuntimeError):
    """Internal: this rank was unblocked because another rank failed."""


class _StaleRankError(RuntimeError):
    """Internal: a leftover thread from a previous run touched the cluster."""


class _Message:
    """Envelope carrying a payload plus its simulated arrival time."""

    __slots__ = ("payload", "arrival", "nbytes")

    def __init__(self, payload: Any, arrival: float, nbytes: int):
        self.payload = payload
        self.arrival = arrival
        self.nbytes = nbytes


class _BarrierGroup:
    """A barrier plus the clock list used to synchronize a rank group."""

    __slots__ = ("barrier", "lock", "clocks")

    def __init__(self, parties: int):
        self.barrier = threading.Barrier(parties)
        self.lock = threading.Lock()
        self.clocks: List[float] = []


class Comm:
    """Per-rank communicator handle.

    Attributes
    ----------
    rank, size:
        This rank's index and the cluster size.
    clock:
        Simulated elapsed seconds on this rank.
    bytes_sent:
        Total payload bytes this rank has transmitted (retransmissions
        of dropped messages included — the wire carried them).
    """

    def __init__(self, rank: int, size: int, cluster: "Cluster"):
        self.rank = rank
        self.size = size
        self._cluster = cluster
        self._generation = cluster._generation
        self.clock: float = 0.0
        self.bytes_sent: int = 0
        self.messages_sent: int = 0

    # ------------------------------------------------------------------
    def _check_alive(self, op: str) -> None:
        """Generation guard + fault-plan kill check before any comm op."""
        cluster = self._cluster
        if self._generation != cluster._generation:
            raise _StaleRankError(
                f"rank {self.rank}: thread from run generation {self._generation} "
                f"is stale (cluster is on generation {cluster._generation})"
            )
        if cluster.faults is not None:
            cluster.faults.on_op(self.rank, op, self.clock)

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(
        self,
        payload: np.ndarray,
        dst: int,
        nbytes: Optional[int] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> None:
        """Send ``payload`` to rank ``dst`` (non-blocking, buffered).

        ``nbytes`` overrides the costed message size (used to model
        large transfers while shipping small placeholder arrays).

        Under an active :class:`FaultPlan` a transmission attempt may be
        dropped; the send then retries up to ``retries`` times (default:
        the plan's ``max_retries``), charging exponential ``backoff``
        simulated seconds before each retransmission.  FIFO order is
        preserved because the retry completes before this call returns.
        """
        if not 0 <= dst < self.size or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid destination {dst}")
        self._check_alive("send")
        size_bytes = int(nbytes) if nbytes is not None else int(np.asarray(payload).nbytes)
        cluster = self._cluster
        net = cluster.network
        # Two-level networks price each (src, dst) pair by link class
        # (intra- vs inter-node); single-level models cost all pairs
        # identically through send_cost.
        pair_cost = getattr(net, "pair_send_cost", None)
        plan = cluster.faults
        factor = plan.delay_factor(self.rank) if plan is not None else 1.0
        max_retries = (
            retries if retries is not None
            else (plan.max_retries if plan is not None else 0)
        )
        retry_backoff = (
            backoff if backoff is not None
            else (plan.backoff if plan is not None else 0.0)
        )
        attempt = 0
        while True:
            attempt += 1
            t0 = self.clock
            if pair_cost is not None:
                self.clock += pair_cost(size_bytes, self.rank, dst) * factor
            else:
                self.clock += net.send_cost(size_bytes) * factor
            self.bytes_sent += size_bytes
            self.messages_sent += 1
            if plan is None or not plan.consume_drop(self.rank, dst):
                break
            # This attempt was lost in transit.
            cluster._trace(self.rank, "drop", t0, self.clock, size_bytes, peer=dst)
            if attempt > max_retries:
                raise CommError(
                    f"rank {self.rank}: message to rank {dst} ({size_bytes} bytes) "
                    f"dropped; gave up after {attempt} attempt(s) "
                    f"(retries={max_retries}) at simulated t={self.clock:.6g}"
                )
            self.clock += retry_backoff * (2 ** (attempt - 1))
        cluster._deliver(
            self.rank, dst, _Message(payload, arrival=self.clock, nbytes=size_bytes),
            self._generation,
        )
        cluster._trace(self.rank, "send", t0, self.clock, size_bytes, peer=dst)

    def recv(self, src: int) -> np.ndarray:
        """Blocking receive from rank ``src``; advances the clock.

        Blocks at most until the run deadline; a timeout raises a
        :class:`CommTimeoutError` naming this rank, the expected source,
        this rank's simulated clock, and every other blocked rank.
        """
        if not 0 <= src < self.size or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid source {src}")
        self._check_alive("recv")
        t0 = self.clock
        msg = self._cluster._wait_recv(self, src)
        self.clock = max(self.clock, msg.arrival)
        self._cluster._trace(self.rank, "recv", t0, self.clock, msg.nbytes, peer=src)
        return msg.payload

    def sendrecv(
        self,
        payload: np.ndarray,
        peer: int,
        nbytes: Optional[int] = None,
        retries: Optional[int] = None,
        backoff: Optional[float] = None,
    ) -> np.ndarray:
        """Exchange with ``peer`` (send then receive).

        ``retries``/``backoff`` configure drop retransmission for the
        send side (see :meth:`send`).
        """
        self.send(payload, peer, nbytes=nbytes, retries=retries, backoff=backoff)
        return self.recv(peer)

    # ------------------------------------------------------------------
    # Local cost accounting
    # ------------------------------------------------------------------
    def compute(self, nbytes: int, label: Optional[str] = None) -> None:
        """Charge local reduction arithmetic over ``nbytes`` to the clock.

        ``label`` names the arithmetic phase in traces (e.g.
        ``"dot-products"``); it has no effect on the cost model.
        """
        t0 = self.clock
        self.clock += self._cluster.network.reduce_cost(int(nbytes))
        self._cluster._trace(self.rank, "compute", t0, self.clock, int(nbytes),
                             label=label)

    def advance(self, seconds: float) -> None:
        """Advance the clock by an externally-modeled cost (e.g. compute)."""
        t0 = self.clock
        self.clock += seconds
        self._cluster._trace(self.rank, "advance", t0, self.clock)

    def barrier(self, group: Optional[Sequence[int]] = None) -> None:
        """Synchronize ranks (clocks advance to the group max).

        ``group`` (global ranks, this rank included) restricts the
        barrier to a sub-group; the default synchronizes the whole
        cluster.  Waits at most until the run deadline.
        """
        self._cluster._barrier_sync(self, group)


class GroupComm:
    """A sub-communicator view over a subset of ranks.

    Presents the :class:`Comm` interface with ``rank``/``size`` local to
    ``group`` (a sorted list of global ranks), translating peers to
    global ranks underneath.  This is what lets single-level collectives
    (ring, RVH, AdasumRVH) run unmodified inside the cross-node stage of
    a hierarchical allreduce — including barriers and the cost counters
    the benchmarks read.
    """

    def __init__(self, base: Comm, group):
        group = sorted(group)
        if base.rank not in group:
            raise ValueError(f"rank {base.rank} not in group {group}")
        self._base = base
        self._group = group
        self.rank = group.index(base.rank)
        self.size = len(group)

    @property
    def clock(self) -> float:
        return self._base.clock

    @property
    def bytes_sent(self) -> int:
        return self._base.bytes_sent

    @property
    def messages_sent(self) -> int:
        return self._base.messages_sent

    def send(self, payload, dst: int, nbytes=None, retries=None, backoff=None) -> None:
        self._base.send(payload, self._group[dst], nbytes=nbytes,
                        retries=retries, backoff=backoff)

    def recv(self, src: int):
        return self._base.recv(self._group[src])

    def sendrecv(self, payload, peer: int, nbytes=None, retries=None, backoff=None):
        self.send(payload, peer, nbytes=nbytes, retries=retries, backoff=backoff)
        return self.recv(peer)

    def compute(self, nbytes: int, label: Optional[str] = None) -> None:
        self._base.compute(nbytes, label=label)

    def advance(self, seconds: float) -> None:
        self._base.advance(seconds)

    def barrier(self) -> None:
        """Synchronize the ranks of this sub-group only."""
        self._base.barrier(group=self._group)


class Cluster:
    """A simulated cluster of ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    network:
        α–β model used to cost every message; defaults to zero-cost
        (pure functional execution).
    timeout:
        Wall-clock budget (seconds) shared by *all* blocking waits of
        one :meth:`run` — the hang-detection deadline.
    faults:
        Optional :class:`FaultPlan` injecting delays, drops, and kills.
    trace:
        When true, attach a :class:`CommTracer` recording every op.
    """

    def __init__(
        self,
        size: int,
        network: Optional[NetworkModel] = None,
        timeout: float = 60.0,
        faults: Optional[FaultPlan] = None,
        trace: bool = False,
    ):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self.size = size
        self.network = network or NetworkModel(alpha=0.0, beta=0.0, gamma=0.0, name="free")
        self.timeout = timeout
        self.faults = faults
        self.tracer: Optional[CommTracer] = CommTracer() if trace else None
        self._generation = 0
        self._queues: Dict[Tuple[int, int], queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._blocked: Dict[int, Tuple[str, Optional[int], float]] = {}
        self._barrier_groups: Dict[Tuple[int, ...], _BarrierGroup] = {}
        self._active_barriers: List[threading.Barrier] = []
        self._abort = threading.Event()
        self._abort_reason: Optional[Tuple[int, BaseException]] = None
        self._deadline = time.monotonic() + timeout
        self.comms: List[Comm] = []

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_tracing(self) -> CommTracer:
        """Attach (or return the existing) :class:`CommTracer`."""
        if self.tracer is None:
            self.tracer = CommTracer()
        return self.tracer

    def _trace(self, rank, op, t0, t1, nbytes=0, peer=None, label=None) -> None:
        if self.tracer is not None:
            self.tracer.record(rank, op, t0, t1, nbytes, peer=peer, label=label)

    # ------------------------------------------------------------------
    # Mailboxes (always under the queues lock — a stale daemon thread
    # from a timed-out run must never race a new run's reset)
    # ------------------------------------------------------------------
    def _mailbox(self, src: int, dst: int) -> queue.Queue:
        with self._queues_lock:
            return self._queues.setdefault((src, dst), queue.Queue())

    def _deliver(self, src: int, dst: int, msg: _Message, generation: int) -> None:
        if generation != self._generation:
            raise _StaleRankError(
                f"rank {src}: stale send from generation {generation} discarded"
            )
        self._mailbox(src, dst).put(msg)

    # ------------------------------------------------------------------
    # Blocked-rank bookkeeping (hang diagnostics)
    # ------------------------------------------------------------------
    def _set_blocked(self, rank: int, op: str, peer: Optional[int], clock: float) -> None:
        with self._state_lock:
            self._blocked[rank] = (op, peer, clock)

    def _clear_blocked(self, rank: int) -> None:
        with self._state_lock:
            self._blocked.pop(rank, None)

    def _stuck_snapshot(self) -> str:
        """Human-readable list of every currently blocked rank."""
        with self._state_lock:
            entries = sorted(self._blocked.items())
        if not entries:
            return "no ranks blocked in comm ops"
        parts = []
        for rank, (op, peer, clock) in entries:
            where = f"{op}(peer={peer})" if peer is not None else op
            parts.append(f"rank {rank} blocked on {where} since simulated t={clock:.6g}")
        return "; ".join(parts)

    def _abort_context(self, rank: int, op: str, clock: float) -> str:
        reason = self._abort_reason
        cause = (
            f"rank {reason[0]} failed: {reason[1]!r}" if reason is not None
            else "the run was aborted"
        )
        return (
            f"rank {rank}: aborted while blocked on {op} at simulated "
            f"t={clock:.6g} because {cause}"
        )

    def _trigger_abort(self, rank: int, exc: BaseException) -> None:
        """Record the first failure and wake every blocked rank."""
        with self._state_lock:
            if self._abort_reason is None:
                self._abort_reason = (rank, exc)
            self._abort.set()
            barriers = list(self._active_barriers)
        for b in barriers:
            b.abort()

    # ------------------------------------------------------------------
    # Blocking primitives (all share the run deadline)
    # ------------------------------------------------------------------
    def _wait_recv(self, comm: Comm, src: int) -> _Message:
        q = self._mailbox(src, comm.rank)
        op = f"recv(src={src})"
        self._set_blocked(comm.rank, "recv", src, comm.clock)
        try:
            while True:
                if comm._generation != self._generation:
                    raise _StaleRankError(
                        f"rank {comm.rank}: stale {op} from generation "
                        f"{comm._generation} abandoned"
                    )
                if self._abort.is_set():
                    raise _AbortError(self._abort_context(comm.rank, op, comm.clock))
                remaining = self._deadline - time.monotonic()
                if remaining <= 0:
                    raise CommTimeoutError(
                        f"rank {comm.rank}: recv from rank {src} timed out after "
                        f"{self.timeout:.3g}s wall clock (simulated "
                        f"t={comm.clock:.6g}); {self._stuck_snapshot()}",
                        rank=comm.rank, op="recv", peer=src,
                    )
                try:
                    return q.get(timeout=min(_POLL_SECONDS, remaining))
                except queue.Empty:
                    continue
        finally:
            self._clear_blocked(comm.rank)

    def _get_barrier_group(self, comm: Comm, key: Tuple[int, ...]) -> _BarrierGroup:
        with self._state_lock:
            if self._abort.is_set():
                raise _AbortError(self._abort_context(comm.rank, "barrier", comm.clock))
            grp = self._barrier_groups.get(key)
            if grp is None:
                grp = _BarrierGroup(len(key))
                self._barrier_groups[key] = grp
                self._active_barriers.append(grp.barrier)
            return grp

    def _barrier_wait(self, grp: _BarrierGroup, comm: Comm, parties: int) -> int:
        self._set_blocked(comm.rank, "barrier", None, comm.clock)
        try:
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(
                    f"rank {comm.rank}: barrier timed out after {self.timeout:.3g}s "
                    f"wall clock (simulated t={comm.clock:.6g}); "
                    f"{self._stuck_snapshot()}",
                    rank=comm.rank, op="barrier",
                )
            try:
                return grp.barrier.wait(timeout=remaining)
            except threading.BrokenBarrierError:
                if comm._generation != self._generation:
                    raise _StaleRankError(
                        f"rank {comm.rank}: stale barrier wait abandoned"
                    ) from None
                if self._abort.is_set():
                    raise _AbortError(
                        self._abort_context(comm.rank, "barrier", comm.clock)
                    ) from None
                raise CommTimeoutError(
                    f"rank {comm.rank}: barrier desync — gave up after "
                    f"{self.timeout:.3g}s with {grp.barrier.n_waiting}/{parties} "
                    f"ranks arrived (simulated t={comm.clock:.6g}); "
                    f"{self._stuck_snapshot()}",
                    rank=comm.rank, op="barrier",
                ) from None
        finally:
            self._clear_blocked(comm.rank)

    def _barrier_sync(self, comm: Comm, group: Optional[Sequence[int]] = None) -> None:
        comm._check_alive("barrier")
        ranks = tuple(range(self.size)) if group is None else tuple(sorted(group))
        if comm.rank not in ranks:
            raise ValueError(f"rank {comm.rank} not in barrier group {list(ranks)}")
        if len(ranks) == 1:
            return
        t0 = comm.clock
        grp = self._get_barrier_group(comm, ranks)
        with grp.lock:
            grp.clocks.append(comm.clock)
        self._barrier_wait(grp, comm, len(ranks))
        with grp.lock:
            max_clock = max(grp.clocks)
        comm.clock = max_clock
        # Second phase so the list can be reset safely once all read it.
        if self._barrier_wait(grp, comm, len(ranks)) == 0:
            with grp.lock:
                grp.clocks.clear()
        self._barrier_wait(grp, comm, len(ranks))
        self._trace(comm.rank, "barrier", t0, comm.clock)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Optional[Sequence[tuple]] = None,
    ) -> List[Any]:
        """Run ``fn(comm, *args)`` on every rank; return per-rank results.

        ``rank_args[r]`` supplies extra positional arguments for rank
        ``r``.  Any failure — a rank exception, an injected kill, a
        blocking wait past the deadline, or a thread that never exits —
        raises :class:`CommError` identifying every affected rank.
        Partial results are never returned.
        """
        if rank_args is None:
            rank_args = [()] * self.size
        if len(rank_args) != self.size:
            raise ValueError(f"need {self.size} argument tuples, got {len(rank_args)}")

        # New generation: stale threads from a previous (timed-out) run
        # see the bump and abandon; their queue references are to the
        # old objects replaced below.
        self._generation += 1
        generation = self._generation
        for b in self._active_barriers:
            b.abort()  # wake leftover waiters from a previous run
        with self._queues_lock:
            self._queues = {}
        with self._state_lock:
            self._blocked = {}
            self._barrier_groups = {}
            self._active_barriers = []
            self._abort = threading.Event()
            self._abort_reason = None
        if self.faults is not None:
            self.faults.reset()
        self._deadline = time.monotonic() + self.timeout

        results: List[Any] = [None] * self.size
        errors: List[Tuple[int, BaseException]] = []
        self.comms = [Comm(r, self.size, self) for r in range(self.size)]

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(self.comms[rank], *rank_args[rank])
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))
                if generation == self._generation:
                    self._trigger_abort(rank, exc)

        if self.size == 1:
            runner(0)
        else:
            threads = [
                threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank-{r}")
                for r in range(self.size)
            ]
            for t in threads:
                t.start()
            # Blocked ranks give up at the deadline on their own; the
            # grace period only covers unwinding, so a thread still
            # alive afterwards is hung outside the comm layer.
            grace = max(0.5, 0.1 * self.timeout)
            join_by = self._deadline + grace
            for t in threads:
                t.join(timeout=max(0.0, join_by - time.monotonic()))
            alive = [t for t in threads if t.is_alive()]
            if alive:
                hung = sorted(int(t.name.split("-", 1)[1]) for t in alive)
                self._trigger_abort(hung[0], CommTimeoutError("rank never exited"))
                msg = (
                    f"Cluster.run: rank(s) {hung} never exited within "
                    f"{self.timeout + grace:.3g}s ({self._stuck_snapshot()}; "
                    f"ranks hung outside comm ops cannot be interrupted); "
                    f"partial results discarded"
                )
                if errors:
                    agg = self._aggregate_error(errors)
                    msg += "; " + str(agg)
                    hung_err = CommError(msg)
                    hung_err.rank_errors = dict(agg.rank_errors)
                    hung_err.__cause__ = agg.__cause__
                else:
                    hung_err = CommError(msg)
                hung_err.hung_ranks = list(hung)
                raise hung_err
        if errors:
            raise self._aggregate_error(errors)
        return results

    def _aggregate_error(self, errors: List[Tuple[int, BaseException]]) -> CommError:
        """One CommError naming every failed/stuck rank, worst first."""
        errors = sorted(errors, key=lambda e: e[0])
        primary = [(r, e) for r, e in errors
                   if not isinstance(e, (_AbortError, _StaleRankError))]
        lines = []
        for rank, exc in errors:
            if isinstance(exc, (CommError, RankKilledError, _AbortError, _StaleRankError)):
                lines.append(str(exc))  # already self-describing, names the rank
            else:
                lines.append(f"rank {rank} failed: {exc!r}")
        err = CommError("; ".join(lines))
        err.rank_errors = {r: e for r, e in primary}
        cause = (primary[0][1] if primary else errors[0][1])
        err.__cause__ = cause.__cause__ if isinstance(cause, CommError) and cause.__cause__ else cause
        return err

    # ------------------------------------------------------------------
    def max_clock(self) -> float:
        """Simulated latency of the last :meth:`run` (max over ranks)."""
        return max(c.clock for c in self.comms)

    def total_bytes(self) -> int:
        """Total bytes moved during the last :meth:`run`."""
        return sum(c.bytes_sent for c in self.comms)


# ======================================================================
# Process-per-rank transport (the non-simulated backend)
# ======================================================================

def default_start_method() -> str:
    """Preferred ``multiprocessing`` start method for rank workers.

    ``fork`` when the platform offers it (workers inherit the imported
    interpreter — startup in milliseconds, and
    :func:`repro.tensor.reset_process_state` runs in every child so no
    stale kernel cache survives the fork); ``spawn`` otherwise.  The
    bootstrap path is spawn-safe by construction — everything a worker
    needs is picklable — so callers may force ``spawn`` for bit-for-bit
    parity with platforms that have nothing else.
    """
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _describe_exception(exc: BaseException) -> Tuple[str, str, str]:
    return (type(exc).__name__, str(exc), traceback.format_exc())


def _transport_worker_main(rank: int, conn, bootstrap, spec) -> None:
    """Entry point of one rank worker (top-level: spawn-picklable).

    Bootstrap order matters: per-process kernel/allocator state is reset
    *before* user code runs, so neither a forked copy of the parent's
    GEMM verdict cache nor an untuned spawned heap leaks into gradient
    computation (see :func:`repro.tensor.reset_process_state`).
    """
    from repro.tensor import reset_process_state, tune_allocator

    reset_process_state()
    tune_allocator()
    handler = None
    try:
        handler = bootstrap(rank, spec)
        conn.send_bytes(pickle.dumps(("ready", rank)))
        while True:
            msg = pickle.loads(conn.recv_bytes())
            if msg[0] == "__shutdown__":
                break
            try:
                reply = ("ok", handler(msg))
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                reply = ("error", _describe_exception(exc))
            conn.send_bytes(pickle.dumps(reply))
    except (EOFError, OSError, KeyboardInterrupt):  # parent went away
        pass
    except BaseException as exc:  # bootstrap failed: report once
        try:
            conn.send_bytes(pickle.dumps(("error", _describe_exception(exc))))
        except OSError:
            pass
    finally:
        if handler is not None and hasattr(handler, "close"):
            try:
                handler.close()
            except Exception:
                pass
        conn.close()


class ProcessTransport:
    """Process-per-rank execution: pipe control plane, shared-memory data plane.

    Each rank is a real OS process started via ``fork``/``spawn``.  The
    parent exchanges only *small control messages* (step indices, loss
    scalars, shutdown) over per-rank duplex pipes; gradient payloads
    never cross a pipe — both sides map the same
    :class:`~repro.core.arena.SharedGradientArena` segments, which is
    the zero-copy data plane.

    The contract mirrors :class:`Cluster`: every blocking collect shares
    one wall-clock deadline per round, a timeout raises a diagnostic
    :class:`CommTimeoutError` naming the blocked rank and every other
    outstanding one, a dead worker raises :class:`CommError` with
    structured ``rank_errors``, and an attached :class:`FaultPlan`'s
    kills terminate the real worker process (the elastic supervisor
    classifies, evicts, and respawns exactly as it does for simulated
    ranks).  Control-plane bytes are counted exactly (pickled frame
    sizes) and reported to an optional :class:`CommTracer` on a
    wall-clock timeline.

    Parameters
    ----------
    num_ranks:
        Worker count (one process per rank).
    bootstrap:
        Picklable ``f(rank, spec) -> handler``; runs once inside the
        worker after :func:`repro.tensor.reset_process_state`.  The
        returned ``handler(msg)`` serves each control message; if it has
        a ``close()`` it is called at shutdown.
    spec:
        Picklable bootstrap argument (model bytes, segment names, ...).
    timeout:
        Wall-clock deadline shared by each round of collects — the
        hang-detection budget, as in :class:`Cluster`.
    faults:
        Optional :class:`FaultPlan`; ``kill_rank`` schedules terminate
        the worker's OS process at dispatch time.  (Delays and drops
        model *simulated* wires and do not apply to a real transport.)
    tracer:
        Optional :class:`CommTracer` recording control-plane traffic.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; default
        :func:`default_start_method`.
    """

    def __init__(
        self,
        num_ranks: int,
        bootstrap: Callable,
        spec: Any,
        timeout: float = 60.0,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[CommTracer] = None,
        start_method: Optional[str] = None,
    ):
        if num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.num_ranks = num_ranks
        self.timeout = timeout
        self.faults = faults
        if faults is not None:
            faults.reset()
        self.tracer = tracer
        self.start_method = start_method or default_start_method()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self._ops_dispatched: Dict[int, int] = {r: 0 for r in range(num_ranks)}
        self._closed = False
        ctx = multiprocessing.get_context(self.start_method)
        self._procs: List = []
        self._conns: List = []
        for rank in range(num_ranks):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_transport_worker_main,
                args=(rank, child_conn, bootstrap, spec),
                name=f"repro-rank-{rank}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._atexit = self.shutdown
        atexit.register(self._atexit)
        # Ready handshake under the deadline: a worker that fails to
        # bootstrap (or import) is reported before the first step.
        deadline = time.monotonic() + timeout
        for rank in range(num_ranks):
            reply = self._collect_one(rank, deadline, op="bootstrap")
            if reply != ("ready", rank):
                self.shutdown()
                raise CommError(
                    f"rank {rank}: unexpected bootstrap reply {reply!r}"
                )

    # ------------------------------------------------------------------
    def _trace(self, rank, op, t0, t1, nbytes) -> None:
        if self.tracer is not None:
            self.tracer.record(rank, op, t0, t1, nbytes, peer=rank)

    def _send(self, rank: int, msg: Any) -> None:
        frame = pickle.dumps(msg)
        t0 = time.perf_counter()
        try:
            self._conns[rank].send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            raise self._dead_worker_error(rank, exc)
        self.bytes_sent += len(frame)
        self.messages_sent += 1
        self._trace(rank, "send", t0, time.perf_counter(), len(frame))

    def _dead_worker_error(self, rank: int, cause: BaseException) -> CommError:
        code = self._procs[rank].exitcode
        err = CommError(
            f"rank {rank}: worker process died (exitcode={code}) — {cause!r}"
        )
        err.rank_errors = {rank: cause}
        err.__cause__ = cause
        return err

    def _collect_one(self, rank: int, deadline: float, op: str = "step") -> Any:
        conn = self._conns[rank]
        t0 = time.perf_counter()
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommTimeoutError(
                    f"rank {rank}: {op} reply timed out after "
                    f"{self.timeout:.3g}s wall clock; worker "
                    f"{'alive' if self._procs[rank].is_alive() else 'dead'}",
                    rank=rank, op=op, peer=None,
                )
            try:
                if conn.poll(min(_POLL_SECONDS, remaining)):
                    frame = conn.recv_bytes()
                    break
            except (EOFError, OSError) as exc:
                raise self._dead_worker_error(rank, exc)
            if not self._procs[rank].is_alive():
                raise self._dead_worker_error(
                    rank, RuntimeError("worker exited without replying")
                )
        self.bytes_received += len(frame)
        self._trace(rank, "recv", t0, time.perf_counter(), len(frame))
        reply = pickle.loads(frame)
        if reply[0] == "error":
            type_name, message, tb = reply[1]
            remote = RuntimeError(f"{type_name}: {message}")
            if type_name == "RankKilledError":
                remote = RankKilledError(message, rank=rank)
            err = CommError(
                f"rank {rank} failed in worker: {type_name}: {message}\n{tb}"
            )
            err.rank_errors = {rank: remote}
            raise err
        return reply[1] if reply[0] == "ok" else reply

    def _kill_worker(self, rank: int) -> None:
        proc = self._procs[rank]
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)

    # ------------------------------------------------------------------
    def call(
        self,
        payloads: Sequence[Any],
        ranks: Optional[Sequence[int]] = None,
        op: str = "step",
        consult: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """One parallel round: dispatch ``payloads[i]`` to ``ranks[i]``,
        collect every reply in rank order under a shared deadline.

        An attached fault plan is consulted per dispatch: a due kill
        terminates that worker's OS process first, so the round fails
        exactly the way a real dead rank would — the collect raises
        :class:`CommError` with structured ``rank_errors``.

        ``op`` labels the round for fault accounting and error messages
        (the worker-parallel reduce uses ``"combine"``); the fault
        plan's per-rank op counter advances regardless of the label, so
        a kill scheduled ``after_ops=k`` lands on a rank's ``k``-th
        round whether that round is a compute step or a combine level.
        ``consult`` lists additional participant ranks that receive no
        payload this round (e.g. the passive source side of an in-place
        pair combine) but still advance their fault counters — a due
        kill there also terminates the worker and fails the round, so
        "rank died while its peer read its row" surfaces as the same
        structured error as any other dead rank.
        """
        if self._closed:
            raise CommError("ProcessTransport is shut down")
        ranks = list(range(len(payloads))) if ranks is None else list(ranks)
        if len(ranks) != len(payloads):
            raise ValueError(f"{len(payloads)} payloads for {len(ranks)} ranks")
        killed: Dict[int, BaseException] = {}
        targets = set(ranks)
        for rank in consult or ():
            if rank in targets or self.faults is None:
                continue
            self._ops_dispatched[rank] += 1
            try:
                self.faults.on_op(rank, op, 0.0)
            except RankKilledError as exc:
                exc.rank = rank
                self._kill_worker(rank)
                killed[rank] = exc
        for rank, payload in zip(ranks, payloads):
            if self.faults is not None:
                self._ops_dispatched[rank] += 1
                try:
                    self.faults.on_op(rank, op, 0.0)
                except RankKilledError as exc:
                    exc.rank = rank
                    self._kill_worker(rank)
                    killed[rank] = exc
                    continue
            self._send(rank, payload)
        deadline = time.monotonic() + self.timeout
        results: List[Any] = []
        errors: Dict[int, BaseException] = dict(killed)
        for rank in ranks:
            if rank in killed:
                results.append(None)
                continue
            try:
                results.append(self._collect_one(rank, deadline, op=op))
            except CommError as exc:
                errors.update(exc.rank_errors or {rank: exc})
                results.append(None)
        if errors:
            parts = [f"rank {r}: {e!r}" for r, e in sorted(errors.items())]
            err = CommError("; ".join(parts))
            err.rank_errors = errors
            raise err
        return results

    def alive_ranks(self) -> List[int]:
        return [r for r, p in enumerate(self._procs) if p.is_alive()]

    # ------------------------------------------------------------------
    def shutdown(self, grace: float = 5.0) -> None:
        """Stop every worker (idempotent): polite shutdown, then terminate.

        Registered with ``atexit`` so an abandoned transport can never
        strand worker processes (which would in turn strand their
        shared-memory attachments).
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self._atexit)
        for rank, conn in enumerate(self._conns):
            try:
                conn.send_bytes(pickle.dumps(("__shutdown__",)))
            except (BrokenPipeError, OSError):
                pass
        join_by = time.monotonic() + grace
        for proc in self._procs:
            proc.join(timeout=max(0.0, join_by - time.monotonic()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ProcessTransport":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.shutdown()
        except Exception:
            pass
