"""In-process simulated cluster: threads + blocking queues + virtual clocks.

Each simulated rank runs a user function in its own thread and talks to
peers through a :class:`Comm` handle offering blocking ``send``/``recv``
(the SEND/RECV primitives of the paper's Algorithm 1).  Every rank
carries a virtual clock advanced by the α–β :class:`NetworkModel`; a
receive synchronizes the receiver's clock with the message's arrival
time, so ``max(clock)`` after a collective is its simulated latency.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.netmodel import NetworkModel


class CommError(RuntimeError):
    """Raised when a simulated rank fails (original traceback attached)."""


class _Message:
    """Envelope carrying a payload plus its simulated arrival time."""

    __slots__ = ("payload", "arrival", "nbytes")

    def __init__(self, payload: Any, arrival: float, nbytes: int):
        self.payload = payload
        self.arrival = arrival
        self.nbytes = nbytes


class Comm:
    """Per-rank communicator handle.

    Attributes
    ----------
    rank, size:
        This rank's index and the cluster size.
    clock:
        Simulated elapsed seconds on this rank.
    bytes_sent:
        Total payload bytes this rank has transmitted.
    """

    def __init__(self, rank: int, size: int, cluster: "Cluster"):
        self.rank = rank
        self.size = size
        self._cluster = cluster
        self.clock: float = 0.0
        self.bytes_sent: int = 0
        self.messages_sent: int = 0

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: np.ndarray, dst: int, nbytes: Optional[int] = None) -> None:
        """Send ``payload`` to rank ``dst`` (non-blocking, buffered).

        ``nbytes`` overrides the costed message size (used to model
        large transfers while shipping small placeholder arrays).
        """
        if not 0 <= dst < self.size or dst == self.rank:
            raise ValueError(f"rank {self.rank}: invalid destination {dst}")
        size_bytes = int(nbytes) if nbytes is not None else int(np.asarray(payload).nbytes)
        net = self._cluster.network
        self.clock += net.send_cost(size_bytes)
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        self._cluster._mailbox(self.rank, dst).put(
            _Message(payload, arrival=self.clock, nbytes=size_bytes)
        )

    def recv(self, src: int) -> np.ndarray:
        """Blocking receive from rank ``src``; advances the clock."""
        if not 0 <= src < self.size or src == self.rank:
            raise ValueError(f"rank {self.rank}: invalid source {src}")
        msg: _Message = self._cluster._mailbox(src, self.rank).get(
            timeout=self._cluster.timeout
        )
        self.clock = max(self.clock, msg.arrival)
        return msg.payload

    def sendrecv(self, payload: np.ndarray, peer: int, nbytes: Optional[int] = None) -> np.ndarray:
        """Exchange with ``peer`` (send then receive)."""
        self.send(payload, peer, nbytes=nbytes)
        return self.recv(peer)

    # ------------------------------------------------------------------
    # Local cost accounting
    # ------------------------------------------------------------------
    def compute(self, nbytes: int) -> None:
        """Charge local reduction arithmetic over ``nbytes`` to the clock."""
        self.clock += self._cluster.network.reduce_cost(int(nbytes))

    def advance(self, seconds: float) -> None:
        """Advance the clock by an externally-modeled cost (e.g. compute)."""
        self.clock += seconds

    def barrier(self) -> None:
        """Synchronize all ranks (clocks advance to the global max)."""
        self._cluster._barrier_sync(self)


class GroupComm:
    """A sub-communicator view over a subset of ranks.

    Presents the :class:`Comm` interface with ``rank``/``size`` local to
    ``group`` (a sorted list of global ranks), translating peers to
    global ranks underneath.  This is what lets single-level collectives
    (ring, RVH, AdasumRVH) run unmodified inside the cross-node stage of
    a hierarchical allreduce.
    """

    def __init__(self, base: Comm, group):
        group = sorted(group)
        if base.rank not in group:
            raise ValueError(f"rank {base.rank} not in group {group}")
        self._base = base
        self._group = group
        self.rank = group.index(base.rank)
        self.size = len(group)

    @property
    def clock(self) -> float:
        return self._base.clock

    def send(self, payload, dst: int, nbytes=None) -> None:
        self._base.send(payload, self._group[dst], nbytes=nbytes)

    def recv(self, src: int):
        return self._base.recv(self._group[src])

    def sendrecv(self, payload, peer: int, nbytes=None):
        self.send(payload, peer, nbytes=nbytes)
        return self.recv(peer)

    def compute(self, nbytes: int) -> None:
        self._base.compute(nbytes)

    def advance(self, seconds: float) -> None:
        self._base.advance(seconds)


class Cluster:
    """A simulated cluster of ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks.
    network:
        α–β model used to cost every message; defaults to zero-cost
        (pure functional execution).
    timeout:
        Seconds a blocking receive waits before declaring deadlock.
    """

    def __init__(self, size: int, network: Optional[NetworkModel] = None, timeout: float = 60.0):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self.size = size
        self.network = network or NetworkModel(alpha=0.0, beta=0.0, gamma=0.0, name="free")
        self.timeout = timeout
        self._queues: Dict[Tuple[int, int], queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._barrier = threading.Barrier(size)
        self._barrier_lock = threading.Lock()
        self._barrier_clocks: List[float] = []

    def _mailbox(self, src: int, dst: int) -> queue.Queue:
        key = (src, dst)
        q = self._queues.get(key)
        if q is None:
            with self._queues_lock:
                q = self._queues.setdefault(key, queue.Queue())
        return q

    def _barrier_sync(self, comm: Comm) -> None:
        with self._barrier_lock:
            self._barrier_clocks.append(comm.clock)
        self._barrier.wait()
        with self._barrier_lock:
            max_clock = max(self._barrier_clocks)
        comm.clock = max_clock
        # Second phase so the list can be reset safely once all read it.
        if self._barrier.wait() == 0:
            with self._barrier_lock:
                self._barrier_clocks.clear()
        self._barrier.wait()

    def run(
        self,
        fn: Callable[..., Any],
        rank_args: Optional[Sequence[tuple]] = None,
    ) -> List[Any]:
        """Run ``fn(comm, *args)`` on every rank; return per-rank results.

        ``rank_args[r]`` supplies extra positional arguments for rank
        ``r``.  Exceptions on any rank are re-raised as
        :class:`CommError` after all threads have been joined.
        """
        if rank_args is None:
            rank_args = [()] * self.size
        if len(rank_args) != self.size:
            raise ValueError(f"need {self.size} argument tuples, got {len(rank_args)}")
        self._queues.clear()
        results: List[Any] = [None] * self.size
        errors: List[Tuple[int, BaseException]] = []
        self.comms = [Comm(r, self.size, self) for r in range(self.size)]

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(self.comms[rank], *rank_args[rank])
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors.append((rank, exc))

        if self.size == 1:
            runner(0)
        else:
            threads = [
                threading.Thread(target=runner, args=(r,), daemon=True, name=f"rank-{r}")
                for r in range(self.size)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=self.timeout + 10)
        if errors:
            rank, exc = errors[0]
            raise CommError(f"rank {rank} failed: {exc!r}") from exc
        return results

    def max_clock(self) -> float:
        """Simulated latency of the last :meth:`run` (max over ranks)."""
        return max(c.clock for c in self.comms)

    def total_bytes(self) -> int:
        """Total bytes moved during the last :meth:`run`."""
        return sum(c.bytes_sent for c in self.comms)
