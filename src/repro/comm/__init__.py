"""Simulated message-passing cluster.

This package replaces MPI/NCCL for the reproduction.  It provides:

* :class:`Cluster` / :class:`Comm` — N simulated ranks running as
  threads with blocking point-to-point ``send``/``recv`` and per-rank
  simulated clocks (:mod:`repro.comm.transport`);
* collectives — ring allreduce, recursive doubling, recursive vector
  halving (reduce-scatter + allgather), broadcast, and a two-level
  hierarchical allreduce (:mod:`repro.comm.collectives`);
* an α–β network cost model with presets for the paper's hardware
  (NVLink/NCCL, InfiniBand, PCIe, slow TCP) plus analytic latency
  formulas for each collective (:mod:`repro.comm.netmodel`);
* the tensor-fusion buffer with per-tensor boundary bookkeeping that
  Adasum needs for per-layer dot products (:mod:`repro.comm.fusion`);
* robustness and observability: hang detection with per-rank blocked
  state (:mod:`repro.comm.transport`), deterministic fault injection —
  stragglers, message drops with retry, rank kills
  (:mod:`repro.comm.faults`) — and opt-in per-rank event tracing with
  Chrome-trace export (:mod:`repro.comm.tracing`).
"""

from repro.comm.netmodel import (
    NetworkModel,
    TwoLevelNetwork,
    ring_allreduce_cost,
    rvh_allreduce_cost,
    adasum_rvh_cost,
    adasum_ring_cost,
    nccl_allreduce_cost,
    hierarchical_allreduce_cost,
)
from repro.comm.transport import (
    Cluster,
    Comm,
    CommError,
    CommTimeoutError,
    GroupComm,
)
from repro.comm.faults import FaultPlan, RankKilledError
from repro.comm.tracing import CommTracer, TraceEvent
from repro.comm.hierarchical import (
    hierarchical_allreduce,
    hierarchical_adasum_allreduce,
    hierarchical_sum_allreduce,
    cross_node_peers,
)
from repro.comm.collectives import (
    allreduce_ring,
    allreduce_recursive_doubling,
    cluster_allreduce,
    reduce_scatter_halving,
    allgather_doubling,
    broadcast,
    allreduce_group,
)
from repro.comm.fusion import FusionBuffer, FusedTensorLayout
from repro.comm.bucketing import Bucket, BucketPlan
from repro.comm.codec import (
    CodecPipeline,
    WireCodec,
    build_codec,
    build_pipeline,
    parse_wire_codecs,
)

__all__ = [
    "NetworkModel",
    "TwoLevelNetwork",
    "Cluster",
    "Comm",
    "CommError",
    "CommTimeoutError",
    "GroupComm",
    "FaultPlan",
    "RankKilledError",
    "CommTracer",
    "TraceEvent",
    "hierarchical_allreduce",
    "hierarchical_adasum_allreduce",
    "hierarchical_sum_allreduce",
    "cross_node_peers",
    "allreduce_ring",
    "allreduce_recursive_doubling",
    "cluster_allreduce",
    "reduce_scatter_halving",
    "allgather_doubling",
    "broadcast",
    "allreduce_group",
    "FusionBuffer",
    "FusedTensorLayout",
    "CodecPipeline",
    "WireCodec",
    "build_codec",
    "build_pipeline",
    "parse_wire_codecs",
    "Bucket",
    "BucketPlan",
    "ring_allreduce_cost",
    "rvh_allreduce_cost",
    "adasum_rvh_cost",
    "adasum_ring_cost",
    "nccl_allreduce_cost",
    "hierarchical_allreduce_cost",
]
