"""Composable wire codecs: the one home of the wire-format boundary.

PR 4 introduced fp16 wire compression as a ``wire_dtype: "fp32"|"fp16"``
string checked independently in six files; this module replaces that
plumbing with a declarative codec stack.  A :class:`WireCodec` turns a
flat float32 gradient block into a wire payload and back; a
:class:`CodecPipeline` chains codecs in declared order, so
``("fp16", "int8", "topk:0.01")`` means scale-to-fp16, then dynamic
int8 quantization, then magnitude top-k sparsification, each stage
round-tripping the previous stage's output.

Contracts
---------
Every codec declares one of two contracts:

* **bit-exact** (``identity``, ``fp16``): ``decode(encode(x)) == x``
  for representable inputs.  fp16 is bit-exact *on values that
  round-trip* — the dynamic scaler keeps gradients inside fp16 range
  and a power-of-two scale makes the scale/unscale multiply lossless,
  so a row that survives the overflow check decodes to exactly the
  grid value every consumer then agrees on.
* **bounded-error with error feedback** (``int8``, ``topk``,
  ``onebit``): the round-trip loses information, and the per-element
  residual (``adjusted = x + residual; residual' = adjusted -
  decode(encode(adjusted))``) is carried into the next step so the
  lost mass is eventually transmitted (EF-SGD).  Codecs with this
  contract MUST run with residual state or convergence degrades —
  :class:`CodecPipeline` allocates per-row residual arrays
  automatically.

Layer granularity
-----------------
Non-elementwise codecs (``int8``'s scale, ``topk``'s k) compute their
statistics **per layer block** (the arena's tensor boundaries), never
per bucket or per whole row.  Overlap buckets and elastic bucketed
collectives are tensor-aligned, so every execution path sees the same
blocks and the encoded values are structurally identical across the
phased, overlap, and elastic paths — the same trick per-layer Adasum
uses for bit-exactness.

Import direction: this module depends only on NumPy (the dynamic
scaler is injected by the caller or imported lazily), so both
``repro.core`` and ``repro.elastic`` may import it freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------

#: Registered codec names -> (takes_arg, description).
CODEC_NAMES = {
    "identity": (False, "no-op; bit-exact; payload is the raw float32 block"),
    "fp16": (False, "dynamic-scaled fp16 cast; bit-exact on grid values"),
    "int8": (False, "per-layer dynamic int8 quantization; bounded error + EF"),
    "topk": (True, "per-layer magnitude top-k sparsification; bounded error + EF"),
    "onebit": (False, "1-bit sign + pos/neg means (Seide et al.); bounded error + EF"),
}


def parse_wire_codecs(specs) -> Tuple[str, ...]:
    """Normalize/validate a codec-stack declaration.

    Accepts a tuple/list of spec strings or one comma-separated string
    (the CLI form): ``("fp16", "topk:0.01")`` or ``"fp16,topk:0.01"``.
    Returns the normalized tuple; raises ``ValueError`` on an unknown
    codec name or a malformed/out-of-range argument.
    """
    if specs is None:
        return ()
    if isinstance(specs, str):
        specs = [s for s in specs.split(",") if s.strip()]
    out: List[str] = []
    for spec in specs:
        spec = str(spec).strip().lower()
        name, _, arg = spec.partition(":")
        if name not in CODEC_NAMES:
            raise ValueError(
                f"unknown wire codec {name!r}; choose from {sorted(CODEC_NAMES)}"
            )
        takes_arg, _ = CODEC_NAMES[name]
        if arg and not takes_arg:
            raise ValueError(f"wire codec {name!r} takes no argument, got {spec!r}")
        if name == "topk":
            if not arg:
                raise ValueError("topk needs a keep ratio, e.g. 'topk:0.01'")
            try:
                ratio = float(arg)
            except ValueError:
                raise ValueError(f"bad topk ratio in {spec!r}") from None
            if not 0.0 < ratio <= 1.0:
                raise ValueError(f"topk ratio must be in (0, 1], got {ratio}")
            spec = f"topk:{ratio:g}"
        out.append(spec)
    counts: Dict[str, int] = {}
    for spec in out:
        base = spec.partition(":")[0]
        counts[base] = counts.get(base, 0) + 1
        if counts[base] > 1:
            raise ValueError(f"wire codec {base!r} appears twice in the stack")
    return tuple(out)


def codecs_from_wire_dtype(wire_dtype) -> Tuple[str, ...]:
    """Map the legacy ``wire_dtype`` string onto a codec stack.

    This is the one place the ``"fp32"``/``"fp16"`` strings are
    interpreted (enforced by ``scripts/lint_private_imports.py``):
    ``"fp32"`` means no codecs, ``"fp16"`` means ``("fp16",)``.
    """
    if wire_dtype in (None, "fp32"):
        return ()
    if wire_dtype == "fp16":
        return ("fp16",)
    raise ValueError(f"wire_dtype must be 'fp32' or 'fp16', got {wire_dtype!r}")


# ----------------------------------------------------------------------
# Shared per-tensor primitives (also consumed by baselines/compression)
# ----------------------------------------------------------------------

def topk_select(adjusted: np.ndarray, ratio: float) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k = max(round(n*ratio), 1)``
    largest-magnitude elements of a flat array (argpartition order)."""
    k = max(int(round(adjusted.size * ratio)), 1)
    idx = np.argpartition(np.abs(adjusted), -k)[-k:]
    return idx, adjusted[idx]


def onebit_stats(adjusted: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Sign pattern plus positive/negative mean magnitudes (1-bit SGD)."""
    pos = adjusted > 0
    pos_mean = float(adjusted[pos].mean()) if pos.any() else 0.0
    neg_mean = float(adjusted[~pos].mean()) if (~pos).any() else 0.0
    return pos, pos_mean, neg_mean


def int8_quantize(adjusted: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric dynamic int8 quantization of a flat block."""
    amax = float(np.max(np.abs(adjusted))) if adjusted.size else 0.0
    scale = amax / 127.0 if amax > 0.0 else 1.0
    q = np.clip(np.rint(adjusted / scale), -127, 127).astype(np.int8)
    return q, scale


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

class WireCodec:
    """One stage of the wire pipeline.

    Subclasses set the contract flags and implement the block
    round-trip plus the stateless payload encode/decode used for
    transport-level sends.  ``roundtrip(flat, residual)`` mutates
    ``flat`` in place to ``decode(encode(flat + residual))`` and
    updates ``residual`` (ignored when ``error_feedback`` is False).
    """

    name: str = ""
    #: Contract: decode(encode(x)) == x for representable x.
    bit_exact: bool = False
    #: Needs per-element residual state (bounded-error contract).
    error_feedback: bool = False
    #: Elementwise codecs see whole 2-D slabs; others run per layer block.
    elementwise: bool = False

    def begin_step(self) -> None:
        """Fix per-step state (e.g. the fp16 scale) before any encode."""

    def finish_step(self, overflow: bool) -> bool:
        """Consume the step's aggregated overflow verdict; True = skip."""
        return False

    # -- in-place round-trip (the wire boundary of the arena paths) ----
    def roundtrip(self, flat: np.ndarray, residual: Optional[np.ndarray]) -> bool:
        """Round-trip ``flat`` in place; returns True on overflow."""
        raise NotImplementedError

    # -- stateless payload form (transport leaf hops, baselines) -------
    def encode(self, flat: np.ndarray):
        """Payload for an (already round-tripped) block; no residual."""
        raise NotImplementedError

    def decode(self, payload, size: int) -> np.ndarray:
        """Invert :meth:`encode` into a flat float32 array."""
        raise NotImplementedError

    def block_nbytes(self, sizes: Sequence[int], itemsize: int) -> Tuple[int, int]:
        """Modeled wire bytes for layer blocks of the given sizes.

        ``itemsize`` is the per-value width the upstream stages left
        (4 raw, 2 after fp16, 1 after int8); returns ``(nbytes,
        itemsize_out)`` so stages thread their narrowing downstream.
        """
        raise NotImplementedError


class IdentityCodec(WireCodec):
    name = "identity"
    bit_exact = True
    elementwise = True

    def roundtrip(self, flat, residual):
        return False

    def encode(self, flat):
        return np.asarray(flat, dtype=np.float32)

    def decode(self, payload, size):
        return np.asarray(payload, dtype=np.float32)

    def block_nbytes(self, sizes, itemsize):
        return sum(sizes) * itemsize, itemsize


class Fp16Codec(WireCodec):
    """Dynamic-scaled fp16 wire cast (§4.4.1), bit-identical to the
    legacy ``wire_dtype="fp16"`` path: scale -> fp16 cast -> finite
    check -> decode, with one scaler verdict per step.

    The scaler is injected (the :class:`DistributedOptimizer` owns it so
    elastic snapshots keep serializing the same object) or built lazily
    from :class:`repro.core.precision.DynamicScaler`.
    """

    name = "fp16"
    bit_exact = True  # on grid values that survive the overflow check
    elementwise = True

    def __init__(self, scaler=None):
        if scaler is None:
            from repro.core.precision import DynamicScaler  # lazy: import direction

            scaler = DynamicScaler()
        self.scaler = scaler
        self._step_scale = float(scaler.scale_value)

    def begin_step(self):
        self._step_scale = float(self.scaler.scale_value)

    def finish_step(self, overflow):
        return bool(self.scaler.update(overflow))

    def roundtrip(self, flat, residual):
        scale = self._step_scale
        with np.errstate(over="ignore"):
            enc = (flat * scale).astype(np.float16)
            overflow = not bool(np.isfinite(enc).all())
        np.multiply(enc.astype(np.float32), 1.0 / scale, out=flat)
        return overflow

    def encode(self, flat):
        with np.errstate(over="ignore"):
            return (flat * self._step_scale).astype(np.float16)

    def decode(self, payload, size):
        return payload.astype(np.float32) * (1.0 / self._step_scale)

    def block_nbytes(self, sizes, itemsize):
        return sum(sizes) * 2, 2


class Int8Codec(WireCodec):
    """Per-layer symmetric dynamic int8 quantization with error feedback."""

    name = "int8"
    error_feedback = True

    def roundtrip(self, flat, residual):
        # errstate: an fp16 overflow upstream leaves inf in the block;
        # the step is then skipped and the residuals rolled back, so the
        # transient inf-inf is never observed.
        with np.errstate(invalid="ignore", over="ignore"):
            adjusted = flat + residual if residual is not None else flat.copy()
            q, scale = int8_quantize(adjusted)
            decoded = q.astype(np.float32) * np.float32(scale)
            if residual is not None:
                np.subtract(adjusted, decoded, out=residual)
            flat[:] = decoded
        return False

    def encode(self, flat):
        return int8_quantize(flat)

    def decode(self, payload, size):
        q, scale = payload
        return q.astype(np.float32) * np.float32(scale)

    def block_nbytes(self, sizes, itemsize):
        # One byte per element plus a 4-byte scale per layer block.
        return sum(n + 4 for n in sizes), 1


class TopKCodec(WireCodec):
    """Per-layer magnitude top-k sparsification with error feedback."""

    error_feedback = True

    def __init__(self, ratio: float):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"topk ratio must be in (0, 1], got {ratio}")
        self.ratio = float(ratio)
        self.name = f"topk:{ratio:g}"

    def roundtrip(self, flat, residual):
        with np.errstate(invalid="ignore", over="ignore"):  # see Int8Codec
            adjusted = flat + residual if residual is not None else flat.copy()
            idx, values = topk_select(adjusted, self.ratio)
            flat[:] = 0.0
            flat[idx] = values
            if residual is not None:
                np.subtract(adjusted, flat, out=residual)
        return False

    def encode(self, flat):
        idx, values = topk_select(np.asarray(flat, dtype=np.float32), self.ratio)
        return idx.astype(np.int64), values

    def decode(self, payload, size):
        idx, values = payload
        out = np.zeros(size, dtype=np.float32)
        out[idx] = values
        return out

    def block_nbytes(self, sizes, itemsize):
        # int32 index + one value at the upstream width per kept element.
        k_total = sum(max(int(round(n * self.ratio)), 1) for n in sizes)
        return k_total * (4 + itemsize), itemsize


class OneBitCodec(WireCodec):
    """1-bit SGD (Seide et al. 2014): sign pattern + two means, with
    error feedback.  Mostly consumed through the baseline adapters."""

    name = "onebit"
    error_feedback = True

    def roundtrip(self, flat, residual):
        with np.errstate(invalid="ignore", over="ignore"):  # see Int8Codec
            adjusted = flat + residual if residual is not None else flat.copy()
            pos, pos_mean, neg_mean = onebit_stats(adjusted)
            decoded = np.where(pos, pos_mean, neg_mean).astype(np.float32)
            if residual is not None:
                np.subtract(adjusted, decoded, out=residual)
            flat[:] = decoded
        return False

    def encode(self, flat):
        return onebit_stats(np.asarray(flat, dtype=np.float32))

    def decode(self, payload, size):
        pos, pos_mean, neg_mean = payload
        return np.where(pos, pos_mean, neg_mean).astype(np.float32)

    def block_nbytes(self, sizes, itemsize):
        # One bit per element plus two scales per layer block.
        return sum(n // 8 + 8 for n in sizes), itemsize


def build_codec(spec: str, scaler=None) -> WireCodec:
    """Instantiate one codec from a normalized spec string."""
    (spec,) = parse_wire_codecs((spec,))
    name, _, arg = spec.partition(":")
    if name == "identity":
        return IdentityCodec()
    if name == "fp16":
        return Fp16Codec(scaler=scaler)
    if name == "int8":
        return Int8Codec()
    if name == "topk":
        return TopKCodec(float(arg))
    if name == "onebit":
        return OneBitCodec()
    raise ValueError(f"unknown wire codec {name!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------

class CodecPipeline:
    """A chain of codecs applied in declared order at the wire boundary.

    Consumers drive it through the step protocol::

        pipe.bind(num_rows, total_size, boundaries)   # idempotent
        pipe.begin_step()
        overflow |= pipe.encode_block(data, rows, lo, hi)   # per bucket
        skip = pipe.end_step(overflow)                # one verdict/step

    ``encode_block`` round-trips arena columns ``[lo, hi)`` of the given
    rows in place (the rows afterwards hold exactly what a receiver
    would decode); error-feedback residuals commit as blocks encode and
    are rolled back by ``end_step`` on a skipped step (or explicitly by
    :meth:`restore_residuals` when a collective fails before applying).
    """

    def __init__(self, codecs: Sequence[WireCodec]):
        if not codecs:
            raise ValueError("a codec pipeline needs at least one codec")
        self.codecs: Tuple[WireCodec, ...] = tuple(codecs)
        self._num_rows = 0
        self._total = 0
        self._boundaries: Tuple[int, ...] = ()
        self._residuals: Dict[int, np.ndarray] = {}
        self._saved: Dict[int, np.ndarray] = {}

    # -- contract views -----------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.codecs)

    @property
    def bit_exact(self) -> bool:
        """True when the whole stack holds the bit-exact contract."""
        return all(c.bit_exact for c in self.codecs)

    @property
    def error_feedback(self) -> bool:
        return any(c.error_feedback for c in self.codecs)

    @property
    def scaler(self):
        """The fp16 stage's dynamic scaler, or None."""
        for c in self.codecs:
            if isinstance(c, Fp16Codec):
                return c.scaler
        return None

    # -- layout binding -----------------------------------------------
    def bind(self, num_rows: int, total_size: int, boundaries: Sequence[int]) -> None:
        """(Re)bind to an arena layout; reallocates residuals on change."""
        boundaries = tuple(int(b) for b in boundaries)
        if (num_rows, total_size, boundaries) == (
            self._num_rows, self._total, self._boundaries
        ):
            return
        self._num_rows = int(num_rows)
        self._total = int(total_size)
        self._boundaries = boundaries
        self._residuals = {
            i: np.zeros((num_rows, total_size), dtype=np.float32)
            for i, c in enumerate(self.codecs)
            if c.error_feedback
        }
        self._saved = {}

    def _blocks(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Layer blocks covering columns [lo, hi); splits at boundaries."""
        edges = [b for b in self._boundaries if lo < b < hi]
        points = [lo] + edges + [hi]
        return list(zip(points[:-1], points[1:]))

    # -- step protocol -------------------------------------------------
    def begin_step(self) -> None:
        for c in self.codecs:
            c.begin_step()
        # Residuals commit as blocks encode; keep the pre-step values so
        # a skipped/failed step can be rolled back without consuming the
        # error memory of gradients that were never applied.
        self._saved = {i: r.copy() for i, r in self._residuals.items()}

    def encode_block(
        self, data: np.ndarray, rows: Sequence[int], lo: int = 0, hi: Optional[int] = None
    ) -> bool:
        """Round-trip columns ``[lo, hi)`` of the given rows in place.

        Returns the aggregated overflow flag for this block (fp16 range
        exceeded somewhere); the caller ORs flags across blocks and
        passes the verdict to :meth:`end_step` exactly once per step.
        """
        hi = self._total if hi is None else hi
        rows = list(rows)
        all_rows = len(rows) == data.shape[0]
        overflow = False
        blocks = None
        for i, codec in enumerate(self.codecs):
            if codec.elementwise:
                if all_rows:
                    if codec.roundtrip(data[:, lo:hi], None):
                        overflow = True
                else:
                    for r in rows:
                        if codec.roundtrip(data[r, lo:hi], None):
                            overflow = True
                continue
            if blocks is None:
                blocks = self._blocks(lo, hi)
            residual = self._residuals.get(i)
            for r in rows:
                for a, b in blocks:
                    res = residual[r, a:b] if residual is not None else None
                    if codec.roundtrip(data[r, a:b], res):
                        overflow = True
        return overflow

    def end_step(self, overflow: bool) -> bool:
        """One per-step verdict: update the scaler, roll back residuals
        on skip; returns True when the step must be skipped."""
        skip = False
        for c in self.codecs:
            if c.finish_step(overflow):
                skip = True
        if skip:
            self.restore_residuals()
        self._saved = {}
        return skip

    def restore_residuals(self) -> None:
        """Roll residuals back to their pre-step values (failed step)."""
        for i, saved in self._saved.items():
            np.copyto(self._residuals[i], saved)

    # -- byte accounting ----------------------------------------------
    def wire_nbytes(self, lo: int = 0, hi: Optional[int] = None) -> int:
        """Modeled encoded bytes for one row's columns ``[lo, hi)``.

        Deterministic (depends only on the bound layout): each stage
        narrows the per-value width and the last stage's payload size is
        what crosses the wire.  This is the figure ``CommTracer`` byte
        accounting and the perf-guard ``wire_bytes`` report.
        """
        hi = self._total if hi is None else hi
        sizes = [b - a for a, b in self._blocks(lo, hi)]
        itemsize = 4
        nbytes = sum(sizes) * itemsize
        for codec in self.codecs:
            nbytes, itemsize = codec.block_nbytes(sizes, itemsize)
        return nbytes

    # -- transport leaf format ----------------------------------------
    def leaf_format(self) -> "PipelineWireFormat":
        """Wire format for transport-level sends of round-tripped rows."""
        return PipelineWireFormat(self)


def build_pipeline(specs, scaler=None) -> Optional[CodecPipeline]:
    """Build a :class:`CodecPipeline` from spec strings; ``None`` when
    the stack is empty.  ``scaler`` is shared with any fp16 stage."""
    specs = parse_wire_codecs(specs)
    if not specs:
        return None
    return CodecPipeline([build_codec(s, scaler=scaler) for s in specs])


# ----------------------------------------------------------------------
# Transport wire formats (elastic leaf-hop compression)
# ----------------------------------------------------------------------

class Fp16WireFormat:
    """The legacy transport format: scaled fp16 for grid-resident rows.

    Byte- and bit-identical to the original ``wire_scale`` path in
    :mod:`repro.elastic.collective`; kept as its own class so external
    callers passing ``wire_scale`` get exactly the old behaviour.
    """

    def __init__(self, wire_scale: float):
        self.wire_scale = float(wire_scale)

    def encode(self, row: np.ndarray, boundaries=None):
        payload = (row * self.wire_scale).astype(np.float16)
        return payload, payload.nbytes

    def decode(self, payload) -> np.ndarray:
        if isinstance(payload, np.ndarray) and payload.dtype == np.float16:
            return payload.astype(np.float32) * (1.0 / self.wire_scale)
        return payload


class PipelineWireFormat:
    """Compress original-row transport sends through the codec stack.

    The arena rows were already round-tripped by
    :meth:`CodecPipeline.encode_block`, so a leaf hop's payload only
    needs *some* exact re-encoding of the grid-resident row.  The
    format re-encodes statelessly (no residuals) per layer block,
    **verifies** the decode reproduces the row bit-for-bit, and falls
    back to raw float32 (at raw cost) when it does not — the
    bit-exactness contract of the elastic collective is enforced by
    construction, whatever the stack.  Reported bytes come from the
    pipeline's modeled :meth:`CodecPipeline.wire_nbytes` (a real system
    would ship quantized ints + scales; the simulator ships exact
    floats and costs the modeled size).
    """

    _TAG = "__wire_codec__"

    def __init__(self, pipeline: CodecPipeline):
        self.pipeline = pipeline

    def _block_spans(self, n: int, boundaries) -> List[Tuple[int, int]]:
        edges = [int(b) for b in (boundaries or ()) if 0 < int(b) < n]
        points = [0] + edges + [n]
        return list(zip(points[:-1], points[1:]))

    def encode(self, row: np.ndarray, boundaries=None):
        final = self.pipeline.codecs[-1]
        spans = self._block_spans(row.size, boundaries)
        chunks = []
        decoded = np.empty_like(row)
        for a, b in spans:
            payload = final.encode(row[a:b])
            decoded[a:b] = final.decode(payload, b - a)
            chunks.append((a, b, payload))
        if not np.array_equal(decoded, row):
            # Off-grid content (e.g. interior partials, or a stage whose
            # re-encode is not idempotent on this data): honest fallback
            # at raw cost, contract intact.
            return row, row.nbytes
        sizes = [b - a for a, b in spans]
        itemsize = 4
        nbytes = sum(sizes) * itemsize
        for codec in self.pipeline.codecs:
            nbytes, itemsize = codec.block_nbytes(sizes, itemsize)
        return (self._TAG, row.size, chunks), nbytes

    def decode(self, payload) -> np.ndarray:
        if not (isinstance(payload, tuple) and len(payload) == 3 and payload[0] == self._TAG):
            return payload
        _, size, chunks = payload
        final = self.pipeline.codecs[-1]
        out = np.empty(size, dtype=np.float32)
        for a, b, chunk in chunks:
            out[a:b] = final.decode(chunk, b - a)
        return out
