"""Executed two-level hierarchical allreduce (paper §4.2.2).

When ``HOROVOD_HIERARCHICAL_ALLREDUCE`` is set, Horovod brackets the
cross-node reduction with an intra-node NCCL reduce-scatter and
allgather: each GPU ends the local reduce-scatter holding the node-sum
of one slice, participates in a cross-node reduction of that slice with
its peers in other nodes, then the slices are allgathered locally.

With a plain sum the result equals a flat allreduce.  With Adasum the
semantics intentionally differ: microbatches *within* a node are summed
(they act as one larger batch) and Adasum is applied *across* nodes —
"we use the GPUs available in a single node to accumulate local
gradients and use the Adasum operation across nodes" (§4.3).  The
reference semantics are therefore::

    adasum_tree([sum(node 0 grads), sum(node 1 grads), ...])

which the equivalence tests assert.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.comm.fusion import FusedTensorLayout
from repro.comm.transport import Comm


def _node_group(rank: int, gpus_per_node: int):
    node = rank // gpus_per_node
    base = node * gpus_per_node
    return node, list(range(base, base + gpus_per_node))


def _local_reduce_scatter(comm: Comm, x: np.ndarray, group) -> tuple:
    """Ring reduce-scatter within ``group``; returns (slice, (lo, hi)).

    The vector is split into ``len(group)`` chunks; member ``i`` of the
    group ends up owning the fully summed chunk ``(i + 1) % g``.
    """
    g = len(group)
    pos = group.index(comm.rank)
    flat = x.reshape(-1).astype(np.float64).copy()
    chunks = np.array_split(np.arange(flat.size), g)
    right = group[(pos + 1) % g]
    left = group[(pos - 1) % g]
    for step in range(g - 1):
        send_idx = (pos - step) % g
        recv_idx = (pos - step - 1) % g
        comm.send(flat[chunks[send_idx]], right)
        incoming = comm.recv(left)
        comm.compute(incoming.nbytes, label="local-sum")
        flat[chunks[recv_idx]] += incoming
    own_idx = (pos + 1) % g
    lo = int(chunks[own_idx][0]) if len(chunks[own_idx]) else 0
    hi = int(chunks[own_idx][-1]) + 1 if len(chunks[own_idx]) else lo
    return flat[lo:hi], (lo, hi)


def _local_allgather(comm: Comm, piece: np.ndarray, slice_range, group, total: int,
                     dtype) -> np.ndarray:
    """Ring allgather of per-member slices within ``group``."""
    g = len(group)
    pos = group.index(comm.rank)
    right = group[(pos + 1) % g]
    left = group[(pos - 1) % g]
    out = np.empty(total, dtype=np.float64)
    lo, hi = slice_range
    out[lo:hi] = piece
    # Circulate (slice, lo, hi) tuples around the ring g-1 times.
    cur = (piece, lo, hi)
    for _ in range(g - 1):
        payload = np.concatenate([[cur[1], cur[2]], cur[0]])
        comm.send(payload, right)
        incoming = comm.recv(left)
        ilo, ihi = int(incoming[0]), int(incoming[1])
        data = incoming[2:]
        out[ilo:ihi] = data
        cur = (data, ilo, ihi)
    return out.astype(dtype)


def hierarchical_allreduce(
    comm: Comm,
    x: np.ndarray,
    gpus_per_node: int,
    cross_node: Callable[["Comm", np.ndarray], np.ndarray],
    layout: Optional[FusedTensorLayout] = None,
) -> np.ndarray:
    """Two-level allreduce: intra-node sum, cross-node ``cross_node`` op.

    ``cross_node(group_comm, slice)`` runs over a :class:`GroupComm`
    spanning the ranks that hold this slice position on every node, so
    any single-level allreduce (AdasumRVH, recursive doubling, ...)
    plugs in unmodified.  Requires ``comm.size % gpus_per_node == 0``.

    ``layout`` (fused layer boundaries) is forwarded to cross-node ops
    that accept one via a two-argument call signature — the slice's
    offset within the fused buffer is the slice range start, which the
    caller encodes by closing over it; see
    :func:`hierarchical_adasum_allreduce` for the packaged version.
    """
    from repro.comm.transport import GroupComm

    if comm.size % gpus_per_node:
        raise ValueError(
            f"world size {comm.size} not divisible by gpus_per_node {gpus_per_node}"
        )
    _, group = _node_group(comm.rank, gpus_per_node)
    flat = np.ascontiguousarray(x).reshape(-1)
    if gpus_per_node == 1:
        piece, slice_range = flat.astype(np.float64), (0, flat.size)
    else:
        piece, slice_range = _local_reduce_scatter(comm, flat, group)

    # Cross-node stage: ranks occupying the same local position on every
    # node hold the same slice indices.
    peers = cross_node_peers(comm.rank, comm.size, gpus_per_node)
    sub = GroupComm(comm, peers)
    reduced = cross_node(sub, piece.astype(flat.dtype))

    if gpus_per_node == 1:
        return reduced
    return _local_allgather(
        comm, reduced.astype(np.float64), slice_range, group, flat.size, flat.dtype
    )


def hierarchical_adasum_allreduce(
    comm: Comm, x: np.ndarray, gpus_per_node: int
) -> np.ndarray:
    """§4.2.2 packaged: intra-node NCCL-style sum + cross-node AdasumRVH.

    Semantics: node-local gradients are *summed* (acting as one larger
    microbatch per node) and Adasum combines the node sums — but, as in
    the Horovod implementation, each local GPU reduces its slice
    *independently*, so the Adasum dot products are computed per slice
    (the slice plays the role of a "layer"; with tensor fusion the
    slices are further subdivided at layer boundaries).  The tests
    assert equality with per-slice ``adasum_tree`` over the node sums.
    """
    from repro.core.adasum_rvh import adasum_rvh

    return hierarchical_allreduce(
        comm, x, gpus_per_node, cross_node=lambda sub, piece: adasum_rvh(sub, piece)
    )


def cross_node_peers(rank: int, size: int, gpus_per_node: int):
    """Ranks holding this rank's slice position on every node."""
    local = rank % gpus_per_node
    return [n * gpus_per_node + local for n in range(size // gpus_per_node)]
