"""Executed two-level hierarchical allreduce (paper §4.2.2).

When ``HOROVOD_HIERARCHICAL_ALLREDUCE`` is set, Horovod brackets the
cross-node reduction with an intra-node NCCL reduce-scatter and
allgather: each GPU ends the local reduce-scatter holding the node-sum
of one slice, participates in a cross-node reduction of that slice with
its peers in other nodes, then the slices are allgathered locally.

With a plain sum the result equals a flat allreduce.  With Adasum the
semantics intentionally differ: microbatches *within* a node are summed
(they act as one larger batch) and Adasum is applied *across* nodes —
"we use the GPUs available in a single node to accumulate local
gradients and use the Adasum operation across nodes" (§4.3).  The
reference semantics are therefore::

    adasum_tree([sum(node 0 grads), sum(node 1 grads), ...])

which the equivalence tests assert.

Wire accounting: every message carries exactly the slice data in the
input dtype — no metadata bytes, no widened payloads.  Slice ranges are
never transmitted; both the reduce-scatter and the allgather compute
each peer's chunk bounds locally from the deterministic
``np.array_split`` schedule (:func:`_chunk_bounds`).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.collectives import (
    allreduce_recursive_doubling,
    allreduce_ring,
    broadcast,
)
from repro.comm.transport import Comm


def _node_group(rank: int, gpus_per_node: int):
    node = rank // gpus_per_node
    base = node * gpus_per_node
    return node, list(range(base, base + gpus_per_node))


def _chunk_bounds(total: int, g: int) -> List[Tuple[int, int]]:
    """The ``(lo, hi)`` ranges of ``np.array_split(np.arange(total), g)``.

    Chunk ``i`` has ``total // g + 1`` elements when ``i < total % g``
    and ``total // g`` otherwise.  Computed arithmetically so the ring
    schedule never needs to ship indices alongside the data.
    """
    base, extra = divmod(total, g)
    bounds = []
    lo = 0
    for i in range(g):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _local_reduce_scatter(comm: Comm, x: np.ndarray, group) -> tuple:
    """Ring reduce-scatter within ``group``; returns (slice, (lo, hi)).

    The vector is split into ``len(group)`` chunks; member ``i`` of the
    group ends up owning the fully summed chunk ``(i + 1) % g``.
    Accumulation is float64; wire payloads stay in the input dtype
    (each hop sends the running partial sum rounded to storage
    precision, as a real fp32 collective would).
    """
    g = len(group)
    pos = group.index(comm.rank)
    flat = x.reshape(-1).astype(np.float64)
    bounds = _chunk_bounds(flat.size, g)
    right = group[(pos + 1) % g]
    left = group[(pos - 1) % g]
    for step in range(g - 1):
        slo, shi = bounds[(pos - step) % g]
        rlo, rhi = bounds[(pos - step - 1) % g]
        comm.send(flat[slo:shi].astype(x.dtype), right)
        incoming = comm.recv(left)
        comm.compute(incoming.nbytes, label="local-sum")
        flat[rlo:rhi] += incoming
    lo, hi = bounds[(pos + 1) % g]
    return flat[lo:hi], (lo, hi)


def _local_allgather(comm: Comm, piece: np.ndarray, group, total: int,
                     dtype) -> np.ndarray:
    """Ring allgather of per-member slices within ``group``.

    Each member starts holding chunk ``(pos + 1) % g``; after ring step
    ``t`` the incoming payload is chunk ``(pos - t) % g``, so its slice
    range is known locally from the split schedule and only the data
    travels — historically the ``(lo, hi)`` indices were concatenated
    into the payload, adding 16 traced wire bytes per hop and a
    float64 round-trip of the indices.
    """
    g = len(group)
    pos = group.index(comm.rank)
    right = group[(pos + 1) % g]
    left = group[(pos - 1) % g]
    bounds = _chunk_bounds(total, g)
    out = np.empty(total, dtype=dtype)
    lo, hi = bounds[(pos + 1) % g]
    out[lo:hi] = piece
    cur = np.ascontiguousarray(out[lo:hi])
    for t in range(g - 1):
        comm.send(cur, right)
        incoming = comm.recv(left)
        ilo, ihi = bounds[(pos - t) % g]
        out[ilo:ihi] = incoming
        cur = incoming
    return out


def _rebase_boundaries(
    boundaries: Optional[Sequence[int]], lo: int, hi: int
) -> Optional[List[int]]:
    """Project fused layer boundaries into the slice ``[lo, hi)``.

    Adasum treats each boundary-delimited range as one "layer" for its
    dot products; a slice sees only the portions of those layers that
    overlap it, so each boundary clips into slice-local coordinates.
    """
    if boundaries is None:
        return None
    clipped = sorted({min(max(int(b) - lo, 0), hi - lo) for b in boundaries})
    if not clipped or clipped[0] != 0:
        clipped.insert(0, 0)
    if clipped[-1] != hi - lo:
        clipped.append(hi - lo)
    return clipped


def hierarchical_allreduce(
    comm: Comm,
    x: np.ndarray,
    gpus_per_node: int,
    cross_node: Callable,
    boundaries: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Two-level allreduce: intra-node sum, cross-node ``cross_node`` op.

    ``cross_node(group_comm, slice)`` runs over a :class:`GroupComm`
    spanning the ranks that hold this slice position on every node, so
    any single-level allreduce (AdasumRVH, recursive doubling, ...)
    plugs in unmodified.  Requires ``comm.size % gpus_per_node == 0``.

    ``boundaries`` (fused layer boundaries over the whole vector) are
    rebased into each rank's slice and passed as a third argument —
    ``cross_node(group_comm, slice, slice_boundaries)`` — so per-layer
    Adasum dot products respect tensor-fusion layouts.  When
    ``boundaries`` is ``None`` the two-argument form is used, keeping
    plain elementwise cross-node ops (and existing callers) unchanged.
    """
    from repro.comm.transport import GroupComm

    if comm.size % gpus_per_node:
        raise ValueError(
            f"world size {comm.size} not divisible by gpus_per_node {gpus_per_node}"
        )
    _, group = _node_group(comm.rank, gpus_per_node)
    flat = np.ascontiguousarray(x).reshape(-1)
    if gpus_per_node == 1:
        piece, slice_range = flat.astype(np.float64), (0, flat.size)
    else:
        piece, slice_range = _local_reduce_scatter(comm, flat, group)

    # Cross-node stage: ranks occupying the same local position on every
    # node hold the same slice indices.
    peers = cross_node_peers(comm.rank, comm.size, gpus_per_node)
    sub = GroupComm(comm, peers)
    lo, hi = slice_range
    if boundaries is None:
        reduced = cross_node(sub, piece.astype(flat.dtype))
    else:
        reduced = cross_node(
            sub, piece.astype(flat.dtype), _rebase_boundaries(boundaries, lo, hi)
        )

    if gpus_per_node == 1:
        return np.asarray(reduced, dtype=flat.dtype)
    return _local_allgather(
        comm, np.asarray(reduced, dtype=flat.dtype), group, flat.size, flat.dtype
    )


def _cross_node_adasum_tree(sub: Comm, piece: np.ndarray,
                            boundaries: Optional[Sequence[int]] = None) -> np.ndarray:
    """``tree_any`` Adasum across the node group: gather-to-root, one
    in-process pow2-block reduction, binomial broadcast back.

    This is the cross-node geometry that survives *any* node count —
    the fallback an elastic hierarchical world drops to when a rank
    kill breaks node symmetry — and it reproduces the registry's
    ``(adasum, tree_any)`` cell bit for bit over the gathered slices.
    """
    from repro.core.strategies import get_strategy

    if sub.size == 1:
        return piece.copy()
    if sub.rank == 0:
        rows = [piece] + [sub.recv(r) for r in range(1, sub.size)]
        combined = get_strategy("adasum", "tree_any").combine_flat(
            np.stack(rows), boundaries
        )
        return broadcast(sub, combined)
    sub.send(piece, 0)
    return broadcast(sub, piece)


def hierarchical_adasum_allreduce(
    comm: Comm,
    x: np.ndarray,
    gpus_per_node: int,
    boundaries: Optional[Sequence[int]] = None,
    cross_topology: Optional[str] = None,
) -> np.ndarray:
    """§4.2.2 packaged: intra-node NCCL-style sum + cross-node Adasum.

    Semantics: node-local gradients are *summed* (acting as one larger
    microbatch per node) and Adasum combines the node sums — but, as in
    the Horovod implementation, each local GPU reduces its slice
    *independently*, so the Adasum dot products are computed per slice
    (the slice plays the role of a "layer"; with tensor fusion the
    slices are further subdivided at the rebased layer boundaries).
    The tests assert equality with per-slice ``adasum_tree`` over the
    node sums.

    ``cross_topology`` selects the cross-node geometry: ``"rvh"``
    (Algorithm 1, the paper's production choice — requires a
    power-of-two node count) or ``"tree_any"`` (pow2-block tree, any
    node count).  ``None`` picks RVH when the node count is a power of
    two and ``tree_any`` otherwise, which is exactly the fallback an
    elastic world needs after losing whole nodes.
    """
    from repro.core.strategies import get_strategy

    if comm.size % gpus_per_node:
        raise ValueError(
            f"world size {comm.size} not divisible by gpus_per_node {gpus_per_node}"
        )
    nodes = comm.size // gpus_per_node
    if cross_topology is None:
        cross_topology = "rvh" if nodes & (nodes - 1) == 0 else "tree_any"
    cross_topology = str(cross_topology).lower()
    if cross_topology == "rvh":
        rvh = get_strategy("adasum", "rvh")

        def cross(sub, piece, bounds=None):
            return rvh.combine_comm(sub, piece, bounds)
    elif cross_topology in ("tree", "tree_any"):
        cross = _cross_node_adasum_tree
    else:
        raise ValueError(
            f"unknown hierarchical cross topology {cross_topology!r}; "
            "choose 'rvh' or 'tree_any'"
        )
    return hierarchical_allreduce(
        comm, x, gpus_per_node, cross_node=cross, boundaries=boundaries
    )


def hierarchical_sum_allreduce(
    comm: Comm, x: np.ndarray, gpus_per_node: int, average: bool = False
) -> np.ndarray:
    """Two-level elementwise allreduce: equals a flat sum (or mean).

    The cross-node stage uses recursive doubling for power-of-two node
    counts and the ring otherwise, so any node geometry reduces.
    """
    nodes = comm.size // max(gpus_per_node, 1)

    def cross(sub, piece):
        if nodes & (nodes - 1):
            return allreduce_ring(sub, piece)
        return allreduce_recursive_doubling(sub, piece)

    out = hierarchical_allreduce(comm, x, gpus_per_node, cross_node=cross)
    if average:
        out = (out / comm.size).astype(out.dtype)
    return out


def cross_node_peers(rank: int, size: int, gpus_per_node: int):
    """Ranks holding this rank's slice position on every node."""
    local = rank % gpus_per_node
    return [n * gpus_per_node + local for n in range(size // gpus_per_node)]
