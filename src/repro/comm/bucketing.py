"""Reverse-order gradient bucketing for backprop/communication overlap.

DDP-style gradient bucketing: backward produces gradients in reverse
layer order, so packing arena rows into size-capped buckets *in that
order* lets the reduction of an already-complete bucket start on a comm
worker while earlier layers are still backpropagating.

A :class:`BucketPlan` is pure geometry over a
:class:`~repro.comm.fusion.FusedTensorLayout`: each bucket is a
contiguous ``[start, stop)`` range of the flat buffer covering whole
tensors only.  Whole-tensor alignment is what keeps bucketed reduction
bit-identical to the phased full-row reduction for per-layer Adasum —
every layer's dot products see exactly the same elements either way.
Plans are built once per (layout, cap) and cached, like the flat
reduce plans in :mod:`repro.core.operator`.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, Tuple

from repro.comm.fusion import FusedTensorLayout


@dataclasses.dataclass(frozen=True)
class Bucket:
    """One contiguous, tensor-aligned slice of the fused buffer.

    Attributes
    ----------
    index:
        Position in launch order (bucket 0 completes first in backward).
    names:
        Tensor names in the bucket, in backward completion order
        (reverse layout order).
    start, stop:
        Flat-buffer range covered (ascending offsets).
    boundaries:
        Absolute per-tensor offsets within ``[start, stop]``
        (``len == #tensors + 1``), ascending — what per-layer Adasum
        needs, shifted by ``-start`` for kernels that see only the
        bucket slice.
    """

    index: int
    names: Tuple[str, ...]
    start: int
    stop: int
    boundaries: Tuple[int, ...]

    @property
    def size(self) -> int:
        return self.stop - self.start

    def rel_boundaries(self) -> Tuple[int, ...]:
        """Boundaries relative to the bucket slice (first element 0)."""
        return tuple(b - self.start for b in self.boundaries)


@dataclasses.dataclass(frozen=True)
class BucketPlan:
    """Size-capped reverse-order bucketing of a fused layout.

    ``buckets[0]`` holds the *last* tensors of the layout (the first
    gradients backward completes); successive buckets walk toward the
    front of the model.  A single tensor larger than the cap gets its
    own bucket, mirroring :class:`~repro.comm.fusion.FusionBuffer`.
    """

    layout: FusedTensorLayout
    cap_bytes: int
    buckets: Tuple[Bucket, ...]

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def bucket_of(self, name: str) -> Bucket:
        return self.buckets[self._index_of()[name]]

    @functools.lru_cache(maxsize=None)
    def _index_of(self) -> Dict[str, int]:
        return {n: b.index for b in self.buckets for n in b.names}

    @staticmethod
    def for_layout(
        layout: FusedTensorLayout, cap_bytes: int = 1 << 20, itemsize: int = 4
    ) -> "BucketPlan":
        """Build (or fetch the cached) plan for ``layout``/``cap_bytes``."""
        return _build_plan(layout, int(cap_bytes), int(itemsize))


@functools.lru_cache(maxsize=64)
def _build_plan(layout: FusedTensorLayout, cap_bytes: int, itemsize: int) -> BucketPlan:
    if cap_bytes <= 0:
        raise ValueError("cap_bytes must be positive")
    buckets = []
    pend_names: list = []
    pend_bounds: list = []

    def flush() -> None:
        if not pend_names:
            return
        # Walked in reverse, so pending tensors are descending in the
        # flat buffer: the last appended starts the range.
        bounds = sorted(set(pend_bounds))
        buckets.append(
            Bucket(
                index=len(buckets),
                names=tuple(pend_names),
                start=bounds[0],
                stop=bounds[-1],
                boundaries=tuple(bounds),
            )
        )
        pend_names.clear()
        pend_bounds.clear()

    pending_bytes = 0
    for name, (lo, hi) in zip(reversed(layout.names), reversed(layout.slices)):
        nbytes = (hi - lo) * itemsize
        if pend_names and pending_bytes + nbytes > cap_bytes:
            flush()
            pending_bytes = 0
        pend_names.append(name)
        pend_bounds.extend((lo, hi))
        pending_bytes += nbytes
    flush()
    return BucketPlan(layout=layout, cap_bytes=cap_bytes, buckets=tuple(buckets))
