"""fp16 communication with dynamic scaling (paper §4.4.1).

Shows the low-precision pipeline the Horovod implementation uses:
gradients are scaled, cast to fp16 for communication, checked for
overflow (backing the scale off and skipping the step when one occurs),
then decoded and combined with Adasum — whose dot products accumulate
in float64 regardless of the wire precision.

Run:  python examples/mixed_precision.py
"""

import numpy as np

from repro.core import DynamicScaler, Float16Codec, adasum, adasum_scale_factors


def main() -> None:
    rng = np.random.default_rng(0)
    codec = Float16Codec()
    scaler = DynamicScaler(init_scale=2 ** 14)

    print("step | scale   | overflow | skipped")
    for step in range(12):
        # Occasionally produce a huge gradient to trigger the backoff.
        magnitude = 100.0 if step in (3, 4) else 1e-3
        grads = {"layer": (rng.standard_normal(512) * magnitude).astype(np.float32)}
        encoded, skipped = scaler.communicate_fp16(grads, codec)
        overflow = DynamicScaler.has_overflow(encoded)
        print(f"{step:4d} | {scaler.scale_value:7.0f} | {str(overflow):8s} | {skipped}")

    # fp64 accumulation keeps Adasum's scale factors exact even when the
    # wire payload is fp16 with tiny values (would underflow in fp16).
    tiny = np.full(4096, 6e-4, dtype=np.float16)
    s1, s2 = adasum_scale_factors(tiny, tiny)
    print(f"\nparallel fp16 gradients: scale factors = ({s1:.4f}, {s2:.4f}) "
          f"(exact answer: 0.5, 0.5)")

    g1 = rng.standard_normal(256).astype(np.float32)
    g2 = rng.standard_normal(256).astype(np.float32)
    full = adasum(g1, g2)
    half = adasum(g1.astype(np.float16), g2.astype(np.float16)).astype(np.float32)
    print(f"fp16 vs fp32 Adasum max |diff|: {np.abs(full - half).max():.2e}")


if __name__ == "__main__":
    main()
