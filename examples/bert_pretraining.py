"""BERT-style pre-training with LAMB + Adasum (paper Section 5.3).

Pre-trains MiniBERT on the synthetic masked-LM corpus with the LAMB
optimizer, comparing the gradient-averaging baseline against the
post-optimizer Adasum combination of Figure 3 (per-rank optimizer
steps, Adasum of the model deltas).  Prints held-out masked-LM accuracy
over training for both — Adasum-LAMB should reach the bar in fewer
steps (the paper's 20-30% claim).

Run:  python examples/bert_pretraining.py
"""

import numpy as np

from repro import nn
from repro.core import DistributedOptimizer, ReduceOpType
from repro.data import SyntheticTextCorpus, mask_tokens
from repro.models import BertConfig, MiniBERT
from repro.optim import LAMB, PolynomialDecay
from repro.train.metrics import masked_lm_accuracy
from repro.utils import grads_to_dict

VOCAB = 48
RANKS = 4
MICROBATCH = 32
SEQ_LEN = 12
STEPS = 120
TARGET = 0.55


def pretrain(op: ReduceOpType, label: str) -> None:
    corpus = SyntheticTextCorpus(vocab_size=VOCAB, seed=0)
    rng = np.random.default_rng(7)
    eval_toks = corpus.sample_batch(128, SEQ_LEN, np.random.default_rng(100))
    eval_inp, eval_tgt = mask_tokens(
        eval_toks, np.random.default_rng(100), vocab_size=VOCAB
    )

    cfg = BertConfig(vocab_size=VOCAB, hidden=32, layers=2, heads=4, max_seq_len=SEQ_LEN)
    model = MiniBERT(cfg, rng=np.random.default_rng(0))
    schedule = PolynomialDecay(0.02, total_steps=STEPS, warmup_frac=0.1)
    dist_opt = DistributedOptimizer(
        model, lambda ps: LAMB(ps, schedule, weight_decay=0.0), num_ranks=RANKS, op=op
    )
    loss_fn = nn.CrossEntropyLoss(ignore_index=-100)

    print(f"--- {label} ---")
    reached = None
    for step in range(1, STEPS + 1):
        grad_dicts = []
        for _ in range(RANKS):
            toks = corpus.sample_batch(MICROBATCH, SEQ_LEN, rng)
            inp, tgt = mask_tokens(toks, rng, vocab_size=VOCAB)
            model.zero_grad()
            loss_fn(model(inp), tgt).backward()
            grad_dicts.append(grads_to_dict(model))
        dist_opt.step(grad_dicts)
        if step % 20 == 0:
            acc = masked_lm_accuracy(model, eval_inp, eval_tgt)
            print(f"  step {step:4d}: masked-LM accuracy {acc:.3f}")
            if reached is None and acc >= TARGET:
                reached = step
    print(f"  steps to {TARGET:.2f}: {reached if reached else 'not reached'}\n")


def main() -> None:
    pretrain(ReduceOpType.ADASUM, "Adasum-LAMB (Figure 3: post-optimizer deltas)")
    pretrain(ReduceOpType.AVERAGE, "Baseline-LAMB (gradient averaging)")


if __name__ == "__main__":
    main()
