"""AdasumRVH allreduce: correctness + latency sweep (paper §4.2, Fig. 4).

Runs Algorithm 1 verbatim over the threaded message-passing simulator,
checks it against the sequential Adasum-tree reference, then prints the
Figure-4 latency sweep (AdasumRVH vs modeled NCCL sum, 64 ranks,
100 Gb/s InfiniBand constants).

Run:  python examples/allreduce_latency.py
"""

import numpy as np

from repro.comm import NetworkModel
from repro.core import adasum_tree, allreduce_adasum_cluster
from repro.experiments import run_fig4, validate_rvh_simulation
from repro.utils import format_table


def main() -> None:
    # 1. Correctness: the distributed algorithm equals the local tree.
    rng = np.random.default_rng(0)
    grads = [rng.standard_normal(1000).astype(np.float32) for _ in range(8)]
    reference = adasum_tree(grads)
    result, latency = allreduce_adasum_cluster(grads, network=NetworkModel.infiniband())
    err = float(np.abs(result - reference).max())
    print(f"AdasumRVH vs sequential tree: max |diff| = {err:.2e} "
          f"(simulated latency {latency * 1e6:.1f} µs)\n")

    # 2. Cross-validate the analytic cost model against the execution.
    simulated, analytic = validate_rvh_simulation(ranks=8, n_floats=16384)
    print(f"executed latency {simulated * 1e6:.1f} µs  vs analytic "
          f"{analytic * 1e6:.1f} µs\n")

    # 3. The Figure-4 sweep.
    fig4 = run_fig4()
    print(f"Figure 4 — allreduce latency, {fig4.ranks} ranks, InfiniBand model")
    print(format_table(
        ["tensor (bytes)", "Adasum (ms)", "NCCL sum (ms)", "ratio"], fig4.rows()
    ))
    print("\nExpected shape: roughly equal at large sizes (bandwidth-bound),")
    print("Adasum a small constant factor above at small sizes (extra dot-")
    print("product reductions), exactly as in the paper's Figure 4.")


if __name__ == "__main__":
    main()
