"""Per-layer gradient-orthogonality instrumentation (paper §3.6, Fig. 1).

Trains the ResNet proxy with 8 simulated ranks while recording the
paper's orthogonality metric ‖Adasum(g₁..gₙ)‖² / Σ‖gᵢ‖² per layer, and
prints an ASCII rendering of the average curve with the LR-schedule
drops marked — the gradients start aligned and become orthogonal, with
dips at the LR drops.

Run:  python examples/orthogonality_probe.py
"""

import numpy as np

from repro.experiments import run_fig1


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """Render a curve as a row of block characters."""
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        idx = np.linspace(0, len(values) - 1, width).astype(int)
        values = values[idx]
    lo, hi = float(values.min()), float(values.max())
    span = max(hi - lo, 1e-9)
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in values)


def main() -> None:
    print("training ResNet proxy on 8 simulated ranks, probing orthogonality...")
    result = run_fig1("resnet")
    early, late = result.early_vs_late()
    print(f"\naverage orthogonality: early {early:.3f} -> late {late:.3f}")
    print(f"(1 = fully orthogonal gradients; 1/8 = parallel; the paper's")
    print(f" Figure 1 shows the same early-to-late rise)\n")
    print("average curve:", sparkline(result.average))
    print(f"LR drops at probe steps {result.lr_drop_steps}")
    print("\nper-layer late/early ratios (weight layers):")
    for name, vals in sorted(result.per_layer.items()):
        if "weight" in name and vals.size >= 8:
            k = max(len(vals) // 4, 1)
            e, l = float(np.mean(vals[:k])), float(np.mean(vals[-k:]))
            print(f"  {name:35s} {e:.3f} -> {l:.3f}")


if __name__ == "__main__":
    main()
