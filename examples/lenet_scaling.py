"""LeNet-5 scaling case study (paper Section 5.4, Figure 6).

Trains LeNet-5 under the paper's aggressive 2-epoch linear
warmup-decay schedule on 4, 8 and 16 simulated GPUs, with Sum and with
Adasum, *without* retuning the learning rate — demonstrating the easy
scalability Adasum enables (Sum degrades as ranks grow; Adasum holds).

Run:  python examples/lenet_scaling.py
"""

import numpy as np

from repro import nn
from repro.core import DistributedOptimizer, ReduceOpType
from repro.data import make_mnist_like, train_test_split
from repro.models import LeNet5
from repro.optim import SGD, LinearWarmupDecay
from repro.train import ParallelTrainer, accuracy
from repro.utils import format_table

EPOCHS = 2
MICROBATCH = 8
MAX_LR = 0.01  # the aggressive schedule found for sequential training
WARMUP = 0.17  # the paper's tuned warmup fraction


def train(method: str, ranks: int, x_tr, y_tr, x_te, y_te) -> float:
    model = LeNet5(rng=np.random.default_rng(0))
    steps = EPOCHS * (len(x_tr) // (ranks * MICROBATCH))
    schedule = LinearWarmupDecay(MAX_LR, total_steps=steps, warmup_frac=WARMUP)
    dist_opt = DistributedOptimizer(
        model,
        lambda ps: SGD(ps, schedule, momentum=0.9),
        num_ranks=ranks,
        op=ReduceOpType.SUM if method == "sum" else ReduceOpType.ADASUM,
        adasum_pre_optimizer=True,
    )
    trainer = ParallelTrainer(
        model, nn.CrossEntropyLoss(), dist_opt, x_tr, y_tr, microbatch=MICROBATCH, seed=0
    )
    for epoch in range(EPOCHS):
        trainer.train_epoch(epoch)
    return accuracy(model, x_te, y_te)


def main() -> None:
    x, y = make_mnist_like(3072, noise=0.25, seed=0)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, 0.25, seed=1)
    seq = train("sum", 1, x_tr, y_tr, x_te, y_te)
    print(f"sequential baseline accuracy: {seq:.4f}\n")

    rows = []
    for ranks in (4, 8, 16):
        acc_sum = train("sum", ranks, x_tr, y_tr, x_te, y_te)
        acc_ada = train("adasum", ranks, x_tr, y_tr, x_te, y_te)
        rows.append((ranks, f"{acc_sum:.4f}", f"{acc_ada:.4f}"))
        print(f"{ranks:2d} ranks:  Sum {acc_sum:.4f}   Adasum {acc_ada:.4f}")
    print()
    print(format_table(["ranks", "Sum", "Adasum (same LR)"], rows))
    print("\nExpected shape (paper Fig. 6): Sum degrades with rank count at a")
    print("fixed LR; Adasum keeps converging without any hyperparameter change.")


if __name__ == "__main__":
    main()
