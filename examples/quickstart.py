"""Quickstart: the Adasum operator and the distributed optimizer.

Mirrors the paper's Section 4.1 usage:

    opt = hvd.DistributedOptimizer(opt, op=hvd.Adasum)

but on the simulated cluster.  Trains a small MLP on a synthetic task
with 8 simulated ranks, comparing plain gradient summation against
Adasum, and prints the per-epoch validation accuracy of both.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core import DistributedOptimizer, ReduceOpType, adasum
from repro.data import make_mnist_like, train_test_split
from repro.models import MLP
from repro.optim import SGD
from repro.train import ParallelTrainer, accuracy


def demo_operator() -> None:
    """The pairwise operator itself (paper Section 3)."""
    g_orth1 = np.array([1.0, 0.0], dtype=np.float32)
    g_orth2 = np.array([0.0, 1.0], dtype=np.float32)
    g_par = np.array([1.0, 1.0], dtype=np.float32)
    print("Adasum of orthogonal gradients (sums):  ", adasum(g_orth1, g_orth2))
    print("Adasum of parallel gradients (averages):", adasum(g_par, g_par))
    print()


def train(op: ReduceOpType, label: str, ranks: int = 8, epochs: int = 4) -> float:
    x, y = make_mnist_like(2048, noise=0.3, seed=0)
    x_tr, y_tr, x_te, y_te = train_test_split(x, y, 0.25, seed=1)
    model = MLP((28 * 28, 64, 10), rng=np.random.default_rng(42))

    # The only change between the runs is `op=...` — exactly the
    # one-flag switch the paper's Horovod integration exposes.
    dist_opt = DistributedOptimizer(
        model,
        lambda params: SGD(params, lr=0.02, momentum=0.9),
        num_ranks=ranks,
        op=op,
        adasum_pre_optimizer=True,
    )
    trainer = ParallelTrainer(
        model, nn.CrossEntropyLoss(), dist_opt, x_tr, y_tr, microbatch=16, seed=0
    )
    print(f"--- {label} ({ranks} simulated ranks) ---")
    acc = 0.0
    for epoch in range(epochs):
        loss = trainer.train_epoch(epoch)
        acc = accuracy(model, x_te, y_te)
        print(f"  epoch {epoch + 1}: loss {loss:.4f}  val-acc {acc:.4f}")
    print()
    return acc


def main() -> None:
    demo_operator()
    adasum_acc = train(ReduceOpType.ADASUM, "Adasum")
    sum_acc = train(ReduceOpType.SUM, "Sum (synchronous SGD)")
    print(f"final accuracy — Adasum: {adasum_acc:.4f}   Sum: {sum_acc:.4f}")


if __name__ == "__main__":
    main()
