#!/usr/bin/env python
"""Tier-2 fault-injection smoke run with a hard wall-clock budget.

Runs the ``faults``-marked pytest suite (hang detection + fault
injection) as a subprocess and kills it if it exceeds the budget —
the suite exercises deliberately-hung ranks, so a regression in hang
detection would otherwise stall CI instead of failing it.  A second
phase then runs the elastic kill -> recover -> converge scenario
end-to-end: ranks are killed mid-epoch, the supervisor must evict
them, re-shard, finish every epoch at the full sample budget, and land
within a loss tolerance of the failure-free run.

Usage::

    python scripts/fault_smoke.py            # default 120 s budget
    FAULT_SMOKE_BUDGET=60 python scripts/fault_smoke.py

Exit codes: 0 = all passed, 1 = suite or scenario failed,
2 = budget exceeded.
"""

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BUDGET_S = 120.0

# Inline so the subprocess needs nothing but PYTHONPATH; asserts are the
# contract (any failure -> nonzero exit).
ELASTIC_SCENARIO = """
import numpy as np
from repro import nn
from repro.core import ReduceOpType
from repro.models import MLP
from repro.optim import SGD
from repro.elastic import ElasticSchedule, ElasticTrainer

rng = np.random.default_rng(0)
x = rng.standard_normal((320, 8)).astype(np.float32)
y = (x @ rng.standard_normal((8, 3))).argmax(axis=1)

def run(schedule):
    model = MLP((8, 24, 3), rng=np.random.default_rng(0))
    tr = ElasticTrainer(model, nn.CrossEntropyLoss(),
                        lambda ps: SGD(ps, lr=0.25), x, y,
                        microbatch=4, num_ranks=8, op=ReduceOpType.ADASUM,
                        seed=0, schedule=schedule, timeout=10.0)
    losses = []
    for epoch in range(3):
        losses.append(tr.train_epoch(epoch))
        assert sorted(tr.epoch_visited) == list(range(len(x))), (
            "samples dropped or duplicated after recovery")
    return tr, losses

clean, clean_losses = run(None)
sched = ElasticSchedule().kill(2, 3).kill(12, 0).kill(12, 6)
faulty, faulty_losses = run(sched)

assert faulty.num_ranks == 5, faulty.num_ranks
assert len(faulty.recoveries) == 2, faulty.recoveries
assert faulty.recovery_seconds, "recovery overhead not recorded"
assert faulty_losses[-1] < faulty_losses[0], "kill run did not converge"
gap = abs(faulty_losses[-1] - clean_losses[-1])
assert gap < 0.1, f"final loss gap {gap:.4f} vs failure-free run"
print(f"elastic scenario: 8 -> 7 -> 5 ranks, final loss "
      f"{faulty_losses[-1]:.4f} (failure-free {clean_losses[-1]:.4f}, "
      f"gap {gap:.4f}), max recovery "
      f"{max(faulty.recovery_seconds) * 1e3:.1f} ms")
"""


def main() -> int:
    budget = float(os.environ.get("FAULT_SMOKE_BUDGET", DEFAULT_BUDGET_S))
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src

    cmd = [sys.executable, "-m", "pytest", "-m", "faults", "-q", "tests"]
    print(f"fault smoke: {' '.join(cmd)} (budget {budget:g}s)")
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env, timeout=budget)
    except subprocess.TimeoutExpired:
        print(f"fault smoke: BUDGET EXCEEDED after {budget:g}s — "
              "a hang-detection regression is likely", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - start
    status = "passed" if proc.returncode == 0 else "FAILED"
    print(f"fault smoke: {status} in {elapsed:.1f}s "
          f"(budget {budget:g}s, exit {proc.returncode})")
    if proc.returncode != 0:
        return 1

    remaining = max(10.0, budget - elapsed)
    print(f"fault smoke: elastic kill -> recover -> converge scenario "
          f"(budget {remaining:g}s)")
    try:
        proc = subprocess.run([sys.executable, "-c", ELASTIC_SCENARIO],
                              cwd=REPO_ROOT, env=env, timeout=remaining)
    except subprocess.TimeoutExpired:
        print("fault smoke: elastic scenario BUDGET EXCEEDED — recovery "
              "is likely hanging instead of failing", file=sys.stderr)
        return 2
    total = time.monotonic() - start
    status = "passed" if proc.returncode == 0 else "FAILED"
    print(f"fault smoke: elastic scenario {status} "
          f"(total {total:.1f}s, exit {proc.returncode})")
    return 0 if proc.returncode == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
