#!/usr/bin/env python
"""Tier-2 fault-injection smoke run with a hard wall-clock budget.

Runs the ``faults``-marked pytest suite (hang detection + fault
injection) as a subprocess and kills it if it exceeds the budget —
the suite exercises deliberately-hung ranks, so a regression in hang
detection would otherwise stall CI instead of failing it.

Usage::

    python scripts/fault_smoke.py            # default 120 s budget
    FAULT_SMOKE_BUDGET=60 python scripts/fault_smoke.py

Exit codes: 0 = suite passed, 1 = suite failed, 2 = budget exceeded.
"""

import os
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BUDGET_S = 120.0


def main() -> int:
    budget = float(os.environ.get("FAULT_SMOKE_BUDGET", DEFAULT_BUDGET_S))
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + os.pathsep + existing if existing else src

    cmd = [sys.executable, "-m", "pytest", "-m", "faults", "-q", "tests"]
    print(f"fault smoke: {' '.join(cmd)} (budget {budget:g}s)")
    start = time.monotonic()
    try:
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env, timeout=budget)
    except subprocess.TimeoutExpired:
        print(f"fault smoke: BUDGET EXCEEDED after {budget:g}s — "
              "a hang-detection regression is likely", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - start
    status = "passed" if proc.returncode == 0 else "FAILED"
    print(f"fault smoke: {status} in {elapsed:.1f}s "
          f"(budget {budget:g}s, exit {proc.returncode})")
    return 0 if proc.returncode == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
