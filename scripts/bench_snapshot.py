#!/usr/bin/env python
"""Kernel-benchmark snapshot for the perf trajectory (``BENCH_PR2.json``).

Runs the hot-path microbenchmarks (reduction kernels, LeNet/MiniBERT
train steps) under a wall-clock budget and writes
``results/BENCH_PR2.json`` with per-op mean/stddev in milliseconds.

The first ever run of this script records the ``baseline`` section;
subsequent runs refresh the ``current`` section while preserving the
baseline, so a PR can demonstrate its speedup against the tree it
started from and future PRs inherit a perf trajectory.

Ops that the library does not support yet (e.g. the flat-buffer arena
before the PR that introduces it) are skipped, which is what makes the
same script usable on both sides of an optimisation.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py [--budget 90] \
        [--out results/BENCH_PR2.json] [--baseline] \
        [--compare results/BENCH_PR3.json] [--ops op1,op2]

``--baseline`` forces this run to overwrite the baseline section.
``--compare PRIOR.json`` is the perf guard: after timing, compare each
shared op's mean against the prior snapshot and exit non-zero when any
regresses by more than ``--regression-threshold`` (default 25%).
``--ops`` restricts the run to a comma-separated subset (CI uses this
to guard just the cheap kernels).  In compare mode nothing is written
unless ``--out`` is given explicitly.
``--proc-guard`` additionally requires the process backend to beat the
threaded backend by ``--proc-speedup`` (default 1.2x) at 4 ranks on
LeNet; it auto-skips on single-core hosts, where one OS process per
rank cannot outrun anything.
``--reduce-guard`` requires the worker-parallel in-shm tree reduce
(``reduce_mode="workers"``) to beat the parent-driven reduce by
``--reduce-speedup`` (default 1.3x) on the 8-rank MiniBERT reduce
phase; it auto-skips on hosts with fewer than 8 cores, where the
eight rank workers cannot actually combine concurrently.
``--wire-guard`` requires the lossy codec stack (fp16+int8+topk:0.01)
to ship at most ``--wire-ratio`` (default 0.5) of the fp16-only
encoded bytes per step on the 8-rank MiniBERT wire pair; the bytes are
modeled (not timed), so this guard is deterministic and never skips.

Trainer-backed ops additionally report ``compute_s``/``reduce_s`` —
the per-step mean of each phase, from the trainer's phase timers — so
a snapshot shows *where* a train-step op spends its time, not just the
total — and ``wire_bytes``, the modeled encoded bytes shipped per step
(raw fp32 row bytes when no codec stack is active).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import nn  # noqa: E402
from repro.core import DistributedOptimizer, ReduceOpType, adasum, adasum_tree  # noqa: E402
from repro.core.arena import GradientArena  # noqa: E402
from repro.core.distributed_optimizer import make_reducer  # noqa: E402
from repro.models import LeNet5, MiniBERT  # noqa: E402
from repro.optim import SGD, Adam  # noqa: E402
from repro.train import ParallelTrainer  # noqa: E402
from repro.train.trainer import compute_grads  # noqa: E402


def _lenet_grad_dicts(num_ranks: int = 8):
    rng = np.random.default_rng(0)
    model = LeNet5(rng=rng)
    return [
        {n: rng.standard_normal(p.shape).astype(np.float32)
         for n, p in model.named_parameters()}
        for _ in range(num_ranks)
    ]


_TRAINER_MODES = {
    "serial": {},
    "parallel": {"execution": "threads"},
    "overlap": {"overlap": True, "bucket_cap_mb": 0.01},
    "procs": {"execution": "processes"},
    "procs_workers": {"execution": "processes", "reduce_mode": "workers"},
}

# Trainers whose teardown matters (the process backend owns worker
# processes and /dev/shm segments) register a close here; main() drains
# it after each op so pools don't linger and skew later measurements.
_CLEANUPS = []

# Trainers built for the op being timed; main() reads their phase
# timers (compute vs reduce split) into the op's result row, then
# clears the list alongside _CLEANUPS.
_PHASE_TRAINERS = []


def _lenet_trainer(mode: str, num_ranks: int = 4):
    rng = np.random.default_rng(0)
    model = LeNet5(rng=rng)
    x = rng.standard_normal((256, 1, 28, 28)).astype(np.float32)
    y = rng.integers(0, 10, 256)
    dopt = DistributedOptimizer(
        model, lambda ps: SGD(ps, 0.01, momentum=0.9),
        num_ranks=num_ranks, op=ReduceOpType.ADASUM, adasum_pre_optimizer=True,
    )
    trainer = ParallelTrainer(model, nn.CrossEntropyLoss(), dopt, x, y,
                              microbatch=8, **_TRAINER_MODES[mode])
    _CLEANUPS.append(trainer.close)
    _PHASE_TRAINERS.append(trainer)
    indices = next(iter(trainer.iterator.epoch(0)))[1]
    return trainer, indices


def _minibert_trainer(mode: str, num_ranks: int = 4, wire_codecs=()):
    rng = np.random.default_rng(0)
    model = MiniBERT(rng=rng)
    x = rng.integers(0, 64, (128, 32))
    y = rng.integers(0, 64, (128, 32))
    dopt = DistributedOptimizer(
        model, lambda ps: Adam(ps, 1e-3),
        num_ranks=num_ranks, op=ReduceOpType.ADASUM, wire_codecs=wire_codecs,
    )
    trainer = ParallelTrainer(model, nn.CrossEntropyLoss(), dopt, x, y,
                              microbatch=8, **_TRAINER_MODES[mode])
    _CLEANUPS.append(trainer.close)
    _PHASE_TRAINERS.append(trainer)
    indices = next(iter(trainer.iterator.epoch(0)))[1]
    return trainer, indices


def build_ops():
    """Return ``[(name, setup() -> thunk)]``; setup may raise to skip."""
    rng = np.random.default_rng(0)

    def pairwise_setup():
        g1 = rng.standard_normal(1 << 20).astype(np.float32)
        g2 = rng.standard_normal(1 << 20).astype(np.float32)
        return lambda: adasum(g1, g2)

    def tree_setup():
        grads = [rng.standard_normal(1 << 16).astype(np.float32) for _ in range(16)]
        return lambda: adasum_tree(grads)

    def adasum_reducer_setup():
        # Times the reduction the training pipeline runs per step: since
        # the flat-buffer arena became the gradient container this is
        # reduce_arena over zero-copy rows (same math, same result as
        # the historical dict reduce this op used to time).
        arena = GradientArena.from_grad_dicts(_lenet_grad_dicts(8))
        reducer = make_reducer("adasum")
        return lambda: reducer.reduce_arena(arena)

    def sum_reducer_setup():
        arena = GradientArena.from_grad_dicts(_lenet_grad_dicts(8))
        reducer = make_reducer("sum")
        return lambda: reducer.reduce_arena(arena)

    def compute_grads_setup():
        model = LeNet5(rng=np.random.default_rng(0))
        loss_fn = nn.CrossEntropyLoss()
        x = rng.standard_normal((16, 1, 28, 28)).astype(np.float32)
        y = rng.integers(0, 10, 16)
        return lambda: compute_grads(model, loss_fn, x, y)

    def train_step_setup(factory, mode, num_ranks=4):
        def setup():
            trainer, indices = factory(mode, num_ranks)
            trainer.train_step(indices)  # warm caches / replicas
            return lambda: trainer.train_step(indices)
        return setup

    def _elastic_trainer(schedule=None, n=4096):
        from repro.elastic import ElasticTrainer
        from repro.models import MLP
        erng = np.random.default_rng(0)
        x = erng.standard_normal((n, 8)).astype(np.float32)
        y = (x @ erng.standard_normal((8, 3))).argmax(axis=1)
        model = MLP((8, 16, 3), rng=np.random.default_rng(0))
        return ElasticTrainer(
            model, nn.CrossEntropyLoss(), lambda ps: SGD(ps, 0.1), x, y,
            microbatch=4, num_ranks=8, op=ReduceOpType.ADASUM, seed=0,
            schedule=schedule, timeout=10.0,
        )

    def elastic_step_setup():
        # One clean elastic step: serial gradients + the Adasum tree run
        # as a real collective on the simulated 8-rank cluster.
        trainer = _elastic_trainer()
        state = {"epoch": 0}
        trainer.iterator.begin_epoch(0)
        trainer._step_with_recovery()  # warm

        def thunk():
            if not trainer.iterator.has_next():
                state["epoch"] += 1
                trainer.iterator.begin_epoch(state["epoch"])
            trainer._step_with_recovery()
        return thunk

    def elastic_recovery_setup():
        # The recovery path end-to-end: a rank is killed mid-reduction,
        # the supervisor classifies/evicts/rolls back/rebuilds 8 -> 7
        # and retries the step to its first post-recovery commit.  The
        # delta vs elastic_step_8r is the recovery-path overhead.
        from repro.elastic import ElasticSchedule

        def thunk():
            trainer = _elastic_trainer(
                schedule=ElasticSchedule().kill(0, 3), n=64
            )
            trainer.train_epoch(0, max_steps=1)
            assert trainer.num_ranks == 7 and trainer.recovery_seconds
        thunk()  # validate once before timing
        return thunk

    def sched_goodput_setup():
        # One 30-job bursty trace through the multi-tenant control
        # plane on an 8-rank pool: admission, rank-loan preemption,
        # settlement, and the real ElasticTrainer steps each job runs.
        # Guards the scheduler's end-to-end throughput (jobs/sec of
        # simulated service, dominated by numeric step + reshard cost).
        from repro.scheduler import Scheduler, generate_trace

        specs = generate_trace(n_jobs=30, pool_size=8, seed=17)

        def thunk():
            with Scheduler(pool_size=8, policy="loans") as sched:
                sched.submit_all(specs)
                payload = sched.run()
            assert payload["aggregate"]["loans"]["outstanding"] == 0
        return thunk

    def hier_latency_setup():
        # Analytic 256-rank two-level latency sweep (the Figure-4-style
        # scaling study): prices hierarchical Adasum, hierarchical sum,
        # and flat AdasumRVH across 2^12..2^28 bytes on the NVLink+IB
        # preset.  Pure cost-model arithmetic — guards the hot analytic
        # path the simclock and fig4 experiments lean on.
        from repro.experiments import run_fig4_hierarchical

        def thunk():
            result = run_fig4_hierarchical(rank_counts=(256,))
            assert result.points
        return thunk

    return [
        ("pairwise_adasum_1m", pairwise_setup),
        ("hier_latency_256r", hier_latency_setup),
        ("adasum_tree_16r_64k", tree_setup),
        ("adasum_reducer_lenet_8r", adasum_reducer_setup),
        ("sum_reducer_lenet_8r", sum_reducer_setup),
        ("lenet_compute_grads_b16", compute_grads_setup),
        ("lenet_train_step_r4", train_step_setup(_lenet_trainer, "serial")),
        ("lenet_train_step_r4_parallel", train_step_setup(_lenet_trainer, "parallel")),
        ("lenet_train_step_r4_overlap", train_step_setup(_lenet_trainer, "overlap")),
        ("lenet_step_procs_2", train_step_setup(_lenet_trainer, "procs", 2)),
        ("lenet_step_procs_4", train_step_setup(_lenet_trainer, "procs", 4)),
        ("lenet_step_procs_8", train_step_setup(_lenet_trainer, "procs", 8)),
        ("minibert_train_step_r4", train_step_setup(_minibert_trainer, "serial")),
        ("minibert_train_step_r4_parallel", train_step_setup(_minibert_trainer, "parallel")),
        ("minibert_train_step_r4_overlap", train_step_setup(_minibert_trainer, "overlap")),
        ("minibert_step_procs_4", train_step_setup(_minibert_trainer, "procs", 4)),
        # The 8-rank reduce-phase pair: identical compute, identical
        # model; only who runs the combines differs.  Their reduce_s
        # sub-timings are what --reduce-guard compares.
        ("reduce_phase_procs_8r_parent",
         train_step_setup(_minibert_trainer, "procs", 8)),
        ("reduce_phase_procs_8r",
         train_step_setup(_minibert_trainer, "procs_workers", 8)),
        # The 8-rank wire-codec pair: identical model and step; only the
        # codec stack on the flat wire differs.  Their modeled
        # wire_bytes are what --wire-guard compares (and the timings
        # show what the encode/decode round-trip costs per step).
        ("minibert_wire_fp16",
         train_step_setup(
             lambda mode, n: _minibert_trainer(mode, n, wire_codecs=("fp16",)),
             "serial", 8)),
        ("minibert_wire_topk",
         train_step_setup(
             lambda mode, n: _minibert_trainer(
                 mode, n, wire_codecs=("fp16", "int8", "topk:0.01")),
             "serial", 8)),
        ("elastic_step_8r", elastic_step_setup),
        ("elastic_recovery_8to7", elastic_recovery_setup),
        ("sched_goodput_pool8", sched_goodput_setup),
    ]


def bench_op(thunk, budget_s: float, min_rounds: int = 5, max_rounds: int = 60,
             warmup: int = 3):
    """Time ``thunk`` repeatedly within ``budget_s``; returns (mean, stddev, n).

    Several warmup rounds (not just one) let allocator pools, kernel
    caches, and branch-history settle before timing starts — the
    single-warmup version left ``lenet_*`` stddev at 20-25% of mean.
    """
    for _ in range(max(1, warmup)):
        thunk()
    times = []
    t_start = time.perf_counter()
    while len(times) < max_rounds:
        t0 = time.perf_counter()
        thunk()
        times.append((time.perf_counter() - t0) * 1000.0)
        if len(times) >= min_rounds and time.perf_counter() - t_start > budget_s:
            break
    mean = statistics.fmean(times)
    stddev = statistics.stdev(times) if len(times) > 1 else 0.0
    return mean, stddev, len(times)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=float, default=90.0,
                        help="total wall-clock budget in seconds")
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the baseline section")
    parser.add_argument("--compare", default=None, metavar="PRIOR_JSON",
                        help="perf guard: exit non-zero when any shared op's "
                             "mean regresses past the threshold vs this "
                             "snapshot")
    parser.add_argument("--ops", default=None,
                        help="comma-separated subset of ops to run")
    parser.add_argument("--regression-threshold", type=float, default=0.25,
                        help="allowed fractional mean regression in compare "
                             "mode (0.25 = 25%%)")
    parser.add_argument("--proc-guard", action="store_true",
                        help="require the process backend to beat the "
                             "threaded backend by --proc-speedup at 4 ranks "
                             "on LeNet; auto-skipped on single-core hosts "
                             "where real parallel speedup is impossible")
    parser.add_argument("--proc-speedup", type=float, default=1.2,
                        help="required threads/procs mean ratio for "
                             "--proc-guard (1.2 = procs at least 1.2x "
                             "faster than threads)")
    parser.add_argument("--reduce-guard", action="store_true",
                        help="require the worker-parallel reduce to beat the "
                             "parent-driven reduce by --reduce-speedup on the "
                             "8-rank MiniBERT reduce phase; auto-skipped on "
                             "hosts with fewer than 8 cores, where 8 rank "
                             "workers cannot combine concurrently")
    parser.add_argument("--reduce-speedup", type=float, default=1.3,
                        help="required parent/workers reduce_s ratio for "
                             "--reduce-guard (1.3 = workers at least 1.3x "
                             "faster than the parent reduce)")
    parser.add_argument("--wire-guard", action="store_true",
                        help="require the lossy codec stack "
                             "(fp16+int8+topk:0.01) to ship at most "
                             "--wire-ratio of the fp16-only encoded bytes per "
                             "step on the 8-rank MiniBERT wire pair; modeled "
                             "bytes, so deterministic on any host")
    parser.add_argument("--wire-ratio", type=float, default=0.5,
                        help="maximum topk/fp16 wire_bytes ratio for "
                             "--wire-guard (0.5 = at least 50%% fewer "
                             "encoded bytes)")
    args = parser.parse_args(argv)

    root = pathlib.Path(__file__).resolve().parent.parent
    out_path = pathlib.Path(args.out) if args.out else root / "results" / "BENCH_PR2.json"
    # Guard-only invocations (compare / proc-guard) are read-only unless
    # an output path is asked for explicitly.
    write_output = ((args.compare is None and not args.proc_guard
                     and not args.reduce_guard and not args.wire_guard)
                    or args.out is not None)

    try:  # hot-loop temporaries should not churn mmap (see docs/performance.md)
        from repro.tensor import tune_allocator
        tune_allocator()
    except ImportError:
        pass

    ops = build_ops()
    if args.ops:
        wanted = {o.strip() for o in args.ops.split(",") if o.strip()}
        unknown = wanted - {name for name, _ in ops}
        if unknown:
            print(f"unknown ops: {sorted(unknown)}", file=sys.stderr)
            return 2
        ops = [(name, setup) for name, setup in ops if name in wanted]
    per_op_budget = args.budget / max(len(ops), 1)
    results = {}
    for name, setup in ops:
        try:
            thunk = setup()
        except (TypeError, NotImplementedError, AttributeError, ImportError) as exc:
            print(f"  skip {name}: {type(exc).__name__}: {exc}")
            continue
        mean, stddev, n = bench_op(thunk, per_op_budget)
        results[name] = {"mean_ms": round(mean, 4), "stddev_ms": round(stddev, 4),
                         "rounds": n}
        phase_line = ""
        while _PHASE_TRAINERS:
            trainer = _PHASE_TRAINERS.pop()
            steps = getattr(trainer, "phase_steps", 0)
            if steps:  # overlap owns its own step loop and is untimed
                phases = trainer.phase_seconds
                results[name]["compute_s"] = round(phases["compute"] / steps, 6)
                results[name]["reduce_s"] = round(phases["reduce"] / steps, 6)
                phase_line = (f" [compute {results[name]['compute_s'] * 1e3:.3f}"
                              f" / reduce {results[name]['reduce_s'] * 1e3:.3f} ms]")
                dopt = getattr(trainer, "dist_opt", None)
                if dopt is not None and getattr(dopt, "wire_bytes_total", 0):
                    # Modeled encoded bytes per step (all rank rows) —
                    # deterministic, so usable as an absolute guard.
                    results[name]["wire_bytes"] = round(
                        dopt.wire_bytes_total / steps
                    )
                    phase_line += f" [wire {results[name]['wire_bytes']:,} B]"
        print(f"  {name}: {mean:.3f} ms ± {stddev:.3f} ({n} rounds){phase_line}")
        while _CLEANUPS:  # tear down worker pools / shm before the next op
            _CLEANUPS.pop()()

    if write_output:
        payload = {"schema": "bench-snapshot-v1", "ops": {}}
        if out_path.exists():
            payload = json.loads(out_path.read_text())
        if args.baseline or "baseline" not in payload:
            payload["baseline"] = results
        payload["current"] = results
        payload["ops"] = sorted(set(payload.get("baseline", {})) | set(results))
        payload["meta"] = {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        }
        if payload.get("baseline"):
            speedups = {}
            for op in payload["ops"]:
                base = payload["baseline"].get(op, {}).get("mean_ms")
                cur = results.get(op, {}).get("mean_ms")
                if base and cur:
                    speedups[op] = round(base / cur, 3)
            payload["speedup_vs_baseline"] = speedups
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out_path}")

    if args.compare:
        prior_path = pathlib.Path(args.compare)
        prior = json.loads(prior_path.read_text())
        ref = prior.get("current") or prior.get("baseline") or {}
        threshold = args.regression_threshold
        regressions = []
        shared = sorted(set(ref) & set(results))
        if not shared:
            print(f"no shared ops with {prior_path}", file=sys.stderr)
            return 2
        print(f"perf guard vs {prior_path} (fail at >{threshold:.0%}):")
        for op in shared:
            base = ref[op]["mean_ms"]
            cur = results[op]["mean_ms"]
            ratio = cur / base
            verdict = "REGRESSION" if ratio > 1.0 + threshold else "ok"
            print(f"  {op}: {base:.3f} -> {cur:.3f} ms "
                  f"({ratio:.2f}x) {verdict}")
            if ratio > 1.0 + threshold:
                regressions.append(op)
        if regressions:
            print(f"FAIL: {len(regressions)} op(s) regressed >"
                  f"{threshold:.0%}: {regressions}", file=sys.stderr)
            return 1
        print("perf guard passed")

    if args.proc_guard:
        cpus = os.cpu_count() or 1
        if cpus < 2:
            print(f"proc guard SKIPPED: only {cpus} CPU visible — the "
                  "process backend cannot beat threads without real cores "
                  "(guard enforces on multicore CI runners)")
        else:
            threads_op, procs_op = "lenet_train_step_r4_parallel", "lenet_step_procs_4"
            missing = [op for op in (threads_op, procs_op) if op not in results]
            if missing:
                print(f"proc guard: missing ops {missing} (add them via "
                      "--ops or run the full suite)", file=sys.stderr)
                return 2
            ratio = results[threads_op]["mean_ms"] / results[procs_op]["mean_ms"]
            verdict = "ok" if ratio >= args.proc_speedup else "FAIL"
            print(f"proc guard ({cpus} CPUs): threads "
                  f"{results[threads_op]['mean_ms']:.3f} ms / procs "
                  f"{results[procs_op]['mean_ms']:.3f} ms = {ratio:.2f}x "
                  f"(need >= {args.proc_speedup:.2f}x) {verdict}")
            if ratio < args.proc_speedup:
                print(f"FAIL: process backend only {ratio:.2f}x vs threads "
                      f"at 4 ranks (required {args.proc_speedup:.2f}x)",
                      file=sys.stderr)
                return 1

    if args.reduce_guard:
        cpus = os.cpu_count() or 1
        if cpus < 8:
            print(f"reduce guard SKIPPED: only {cpus} CPU(s) visible — the "
                  "8 rank workers cannot run pair combines concurrently "
                  "without 8 cores (guard enforces on multicore CI runners)")
        else:
            parent_op = "reduce_phase_procs_8r_parent"
            workers_op = "reduce_phase_procs_8r"
            missing = [op for op in (parent_op, workers_op)
                       if "reduce_s" not in results.get(op, {})]
            if missing:
                print(f"reduce guard: missing reduce_s for {missing} (add "
                      "them via --ops or run the full suite)", file=sys.stderr)
                return 2
            parent_s = results[parent_op]["reduce_s"]
            workers_s = results[workers_op]["reduce_s"]
            ratio = parent_s / workers_s
            verdict = "ok" if ratio >= args.reduce_speedup else "FAIL"
            print(f"reduce guard ({cpus} CPUs, 8 ranks, MiniBERT): parent "
                  f"reduce {parent_s * 1e3:.3f} ms / workers "
                  f"{workers_s * 1e3:.3f} ms = {ratio:.2f}x "
                  f"(need >= {args.reduce_speedup:.2f}x) {verdict}")
            if ratio < args.reduce_speedup:
                print(f"FAIL: worker-parallel reduce only {ratio:.2f}x vs "
                      f"the parent reduce at 8 ranks (required "
                      f"{args.reduce_speedup:.2f}x)", file=sys.stderr)
                return 1

    if args.wire_guard:
        fp16_op, topk_op = "minibert_wire_fp16", "minibert_wire_topk"
        missing = [op for op in (fp16_op, topk_op)
                   if "wire_bytes" not in results.get(op, {})]
        if missing:
            print(f"wire guard: missing wire_bytes for {missing} (add them "
                  "via --ops or run the full suite)", file=sys.stderr)
            return 2
        fp16_bytes = results[fp16_op]["wire_bytes"]
        topk_bytes = results[topk_op]["wire_bytes"]
        ratio = topk_bytes / max(fp16_bytes, 1)
        verdict = "ok" if ratio <= args.wire_ratio else "FAIL"
        print(f"wire guard (8 ranks, MiniBERT): fp16 {fp16_bytes:,} B/step / "
              f"fp16+int8+topk:0.01 {topk_bytes:,} B/step = {ratio:.3f} "
              f"(need <= {args.wire_ratio:.2f}) {verdict}")
        if ratio > args.wire_ratio:
            print(f"FAIL: lossy stack ships {ratio:.0%} of the fp16-only "
                  f"encoded bytes (required <= {args.wire_ratio:.0%})",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
