#!/usr/bin/env python
"""CI smoke test for the process-per-rank execution backend.

A minimal end-to-end probe of the multiprocessing transport that CI can
run on every supported interpreter: spawn-start a 2-rank worker pool
over a shared-memory arena, train one step, check the result is
bit-identical to the serial backend, shut everything down, and verify
no worker process or ``/dev/shm`` segment survived.

Exercises the pieces most likely to rot across Python versions —
pickling of the bootstrap spec under ``spawn``, ``shared_memory``
resource-tracker behaviour, and the atexit/close teardown ordering —
in a few seconds, without the full tier-1 matrix.

Usage::

    PYTHONPATH=src python scripts/proc_smoke.py
"""

from __future__ import annotations

import multiprocessing
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import nn  # noqa: E402
from repro.core import RunConfig, leaked_shared_segments  # noqa: E402
from repro.core.arena import SharedGradientArena  # noqa: E402
from repro.models import MLP  # noqa: E402
from repro.optim import SGD  # noqa: E402
from repro.train import ParallelTrainer  # noqa: E402


def _one_step(execution: str, start_method=None):
    rng = np.random.default_rng(7)
    x = rng.standard_normal((32, 12)).astype(np.float32)
    y = (x @ rng.standard_normal((12, 4))).argmax(axis=1)
    model = MLP((12, 16, 4), rng=np.random.default_rng(3))
    config = RunConfig(op="adasum", topology="tree_any", num_ranks=2,
                       microbatch=2, seed=0, execution=execution)
    kwargs = {"start_method": start_method} if start_method else {}
    trainer = ParallelTrainer.from_config(
        model, nn.CrossEntropyLoss(), lambda ps: SGD(ps, lr=0.1),
        x, y, config, **kwargs,
    )
    try:
        if execution == "processes":
            assert isinstance(trainer.arena, SharedGradientArena)
            assert leaked_shared_segments(), "expected live shm segments"
        _, rank_indices = next(iter(trainer.iterator.epoch(0)))
        loss = trainer.train_step(rank_indices)
    finally:
        trainer.close()
    params = {n: p.data.copy() for n, p in model.named_parameters()}
    return loss, params


def main() -> int:
    start_method = "spawn" if "spawn" in multiprocessing.get_all_start_methods() else None
    print(f"proc smoke: python {sys.version.split()[0]}, "
          f"start_method={start_method or 'default'}")

    before = leaked_shared_segments()
    ref_loss, ref_params = _one_step("serial")
    loss, params = _one_step("processes", start_method=start_method)

    assert loss == ref_loss, f"loss diverged: {loss} != {ref_loss}"
    for name in ref_params:
        np.testing.assert_array_equal(
            ref_params[name].view(np.uint8), params[name].view(np.uint8),
            err_msg=f"parameter {name} diverged from serial",
        )
    leaked = [s for s in leaked_shared_segments() if s not in before]
    assert not leaked, f"leaked /dev/shm segments: {leaked}"

    alive = [p for p in multiprocessing.active_children()]
    assert not alive, f"worker processes survived shutdown: {alive}"

    print(f"proc smoke OK: one step bit-identical to serial "
          f"(loss={loss:.6f}), no leaked segments, no stray workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
