#!/usr/bin/env python
"""CI smoke test for the multi-tenant scheduler control plane.

Drives a small deterministic trace (tens of jobs, bursty arrivals,
mixed priorities and rigidity) through the :class:`Scheduler` twice and
checks the contracts the control plane must never break:

* every admissible job completes, every oversized one is rejected;
* every rank loan is settled — none outstanding at the horizon;
* the loans policy wastes zero samples (exactly-once across preemption);
* the full metrics payload is byte-stable across independent runs
  (same seed → same JSON);
* no ``/dev/shm`` segment survives the run (jobs own real
  ``ElasticTrainer`` instances, so leaked execution state would show
  up here first).

A second tiny trace runs under ``policy="kill"`` to confirm the
baseline policy still requeues and completes.

Usage::

    PYTHONPATH=src python scripts/sched_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core.arena import leaked_shared_segments  # noqa: E402
from repro.scheduler import Scheduler, generate_trace  # noqa: E402


def _run_trace(policy: str, n_jobs: int, seed: int):
    specs = generate_trace(n_jobs=n_jobs, pool_size=8, seed=seed)
    with Scheduler(pool_size=8, policy=policy) as sched:
        sched.submit_all(specs)
        return sched.run()


def main() -> int:
    print(f"sched smoke: python {sys.version.split()[0]}")

    before = leaked_shared_segments()

    a = _run_trace("loans", n_jobs=40, seed=17)
    b = _run_trace("loans", n_jobs=40, seed=17)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True), (
        "same trace, same seed produced different metrics payloads"
    )

    agg = a["aggregate"]
    done = agg["jobs"]["completed"]
    rejected = agg["jobs"]["rejected"]
    assert done + rejected == 40, f"jobs unaccounted for: {agg['jobs']}"
    assert done > 0, "trace completed no jobs"
    for row in a["jobs"]:
        assert row["phase"] in ("completed", "rejected"), (
            f"job {row['name']} stuck in phase {row['phase']}"
        )
    assert agg["loans"]["outstanding"] == 0, (
        f"{agg['loans']['outstanding']} loan(s) never settled"
    )
    assert agg["wasted_samples"] == 0, (
        f"loans policy wasted {agg['wasted_samples']} samples"
    )
    assert 0 < agg["utilization"]["active"] <= 1

    kill = _run_trace("kill", n_jobs=16, seed=3)["aggregate"]
    assert kill["jobs"]["completed"] + kill["jobs"]["rejected"] == 16
    assert kill["loans"]["total"] == 0

    leaked = [s for s in leaked_shared_segments() if s not in before]
    assert not leaked, f"leaked /dev/shm segments: {leaked}"

    print(
        f"sched smoke OK: {done} completed / {rejected} rejected, "
        f"{agg['preemptions']} preemptions "
        f"({agg['loans']['shrink']} shrink / {agg['loans']['pause']} pause "
        f"loans, all returned), deterministic payload, no leaked segments"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
