#!/usr/bin/env python
"""Lint: forbid private Adasum kernel names outside ``repro.core``.

The strategy registry (``repro.core.strategies``) is the single
dispatch point for every reduction path.  Code outside ``src/repro/core``
must go through ``get_strategy(...)`` / ``make_reducer(...)`` /
``cluster_allreduce(...)`` rather than importing the private flat
kernels or the deprecated per-topology entry points directly.  This
grep-level check keeps the boundary from eroding: a private name that
leaks into another package turns the next kernel refactor into a
cross-package breakage.

Usage::

    python scripts/lint_private_imports.py

Exits non-zero and prints every offending ``path:line`` when a
forbidden token appears outside the allowed area.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Private kernel internals plus the deprecated flat entry points.  The
# deprecated names still exist (as warn-once shims in repro.core) so old
# user code keeps working, but nothing in this repo outside core/ may
# call them.
FORBIDDEN = (
    "_adasum_flat_reduce",
    "_FlatReducePlan",
    "_adasum_rvh_level",
    "_adasum_flat_pair",
    "_flat_pair_scales",
    "_rvh_flat",
    "_ring_flat",
    "adasum_tree_flat",
    "adasum_tree_any_flat",
    "adasum_linear_flat",
    "adasum_rvh_flat",
    "adasum_ring_flat",
)

# Everything under these roots is scanned; files under src/repro/core
# are the implementation and may use the private names freely.
SCAN_ROOTS = ("src", "benchmarks", "scripts")
ALLOWED_PREFIX = REPO / "src" / "repro" / "core"


def scan() -> list[str]:
    offenders = []
    for root in SCAN_ROOTS:
        for path in sorted((REPO / root).rglob("*.py")):
            if path == REPO / "scripts" / "lint_private_imports.py":
                continue
            if ALLOWED_PREFIX in path.parents or path == ALLOWED_PREFIX:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for token in FORBIDDEN:
                    if token in line:
                        rel = path.relative_to(REPO)
                        offenders.append(f"{rel}:{lineno}: {token}: {line.strip()}")
    return offenders


def main() -> int:
    offenders = scan()
    if offenders:
        print("private reduction-kernel names leaked outside repro.core:")
        for line in offenders:
            print(f"  {line}")
        print(
            "\nroute through repro.core.strategies.get_strategy(...), "
            "repro.core.make_reducer(...), or "
            "repro.comm.cluster_allreduce(...) instead."
        )
        return 1
    print("lint_private_imports: no private kernel names outside repro.core")
    return 0


if __name__ == "__main__":
    sys.exit(main())
