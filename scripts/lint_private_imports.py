#!/usr/bin/env python
"""Lint: forbid private reduction/collective names outside their package.

The strategy registry (``repro.core.strategies``) is the single
dispatch point for every reduction path.  Code outside ``src/repro/core``
must go through ``get_strategy(...)`` / ``make_reducer(...)`` /
``cluster_allreduce(...)`` rather than importing the private flat
kernels or the deprecated per-topology entry points directly.  The
same boundary holds for the wire-level hierarchical collective: its
ring-schedule internals (chunk-bound arithmetic, local reduce-scatter /
allgather stages, the cross-node tree fallback) are private to
``src/repro/comm`` — everything else calls the public
``hierarchical_*_allreduce`` entry points.  A third boundary guards
the wire-codec stack: ``wire_dtype`` string comparisons may appear
only in ``repro.core.config`` and ``repro.comm.codec`` — every other
layer consumes the normalized ``wire_codecs`` tuple (or
``codecs_from_wire_dtype``), so the deprecated alias has exactly one
decoder.  This grep-level check keeps the boundaries from eroding: a
private name that leaks into another package turns the next kernel
refactor into a cross-package breakage.

Usage::

    python scripts/lint_private_imports.py

Exits non-zero and prints every offending ``path:line`` when a
forbidden token appears outside its allowed area.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Each rule: (tokens, allowed prefixes) — the tokens may appear only in
# files under one of the allowed prefixes.
RULES = (
    # Private kernel internals plus the deprecated flat entry points.
    # The deprecated names still exist (as warn-once shims in
    # repro.core) so old user code keeps working, but nothing in this
    # repo outside core/ may call them.
    (
        (
            "_adasum_flat_reduce",
            "_FlatReducePlan",
            "_adasum_rvh_level",
            "_adasum_flat_pair",
            "_flat_pair_scales",
            "_rvh_flat",
            "_ring_flat",
            "adasum_tree_flat",
            "adasum_tree_any_flat",
            "adasum_linear_flat",
            "adasum_rvh_flat",
            "adasum_ring_flat",
            "_HierarchicalMixin",
        ),
        (REPO / "src" / "repro" / "core",),
    ),
    # Wire-level hierarchical collective internals: the ring schedule
    # (chunk bounds, stage functions) and the cross-node tree fallback
    # are comm-private; the registry's hierarchical cells consume only
    # the public hierarchical_*_allreduce entry points.
    (
        (
            "_local_reduce_scatter",
            "_local_allgather",
            "_node_group",
            "_chunk_bounds",
            "_cross_node_adasum_tree",
            "_rebase_boundaries",
        ),
        (REPO / "src" / "repro" / "comm",),
    ),
    # The legacy wire_dtype string may only be *interpreted* in two
    # places: RunConfig's fold onto wire_codecs and the codec module's
    # codecs_from_wire_dtype.  Everywhere else must consume the
    # normalized wire_codecs tuple / CodecPipeline — a direct string
    # comparison reintroduces the six-file ad-hoc plumbing the codec
    # stack replaced.
    (
        (
            "wire_dtype ==",
            "wire_dtype==",
            "wire_dtype !=",
            "wire_dtype!=",
            'wire_dtype in (',
        ),
        (
            REPO / "src" / "repro" / "core" / "config.py",
            REPO / "src" / "repro" / "comm" / "codec.py",
        ),
    ),
)

# Everything under these roots is scanned (tests may exercise privates).
SCAN_ROOTS = ("src", "benchmarks", "scripts")


def _allowed(path: pathlib.Path, prefixes) -> bool:
    return any(prefix in path.parents or path == prefix for prefix in prefixes)


def scan() -> list[str]:
    offenders = []
    for root in SCAN_ROOTS:
        for path in sorted((REPO / root).rglob("*.py")):
            if path == REPO / "scripts" / "lint_private_imports.py":
                continue
            lines = path.read_text().splitlines()
            for tokens, prefixes in RULES:
                if _allowed(path, prefixes):
                    continue
                for lineno, line in enumerate(lines, 1):
                    for token in tokens:
                        if token in line:
                            rel = path.relative_to(REPO)
                            offenders.append(
                                f"{rel}:{lineno}: {token}: {line.strip()}"
                            )
    return offenders


def main() -> int:
    offenders = scan()
    if offenders:
        print("private reduction/collective names leaked outside their package:")
        for line in offenders:
            print(f"  {line}")
        print(
            "\nroute through repro.core.strategies.get_strategy(...), "
            "repro.core.make_reducer(...), repro.comm.cluster_allreduce(...), "
            "or the public repro.comm.hierarchical_*_allreduce entry points "
            "instead.  For wire_dtype string checks, consume the normalized "
            "RunConfig.wire_codecs tuple or "
            "repro.comm.codec.codecs_from_wire_dtype(...)."
        )
        return 1
    print("lint_private_imports: no private kernel names outside their package")
    return 0


if __name__ == "__main__":
    sys.exit(main())
